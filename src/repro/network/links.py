"""Unidirectional link controllers: queueing, power states, and counters.

Each full HMC link is a pair of unidirectional links (one *request* link
carrying traffic away from the processor, one *response* link carrying it
back).  Every unidirectional link has a controller at its transmitter
with, per the paper's configuration:

* 128 buffer entries with read-over-write priority,
* 3.2 ns SERDES latency (stretched under DVFS),
* 0.64 ns per-flit serialization at full width,
* independent power control (HMC links power-manage per direction).

The controller also carries all the *hardware counters* the paper's
management schemes rely on:

* per-width-mode **delay monitors** (virtual FIFO queues, after Ahn et
  al. DAC'14) that estimate what the aggregate read-packet latency would
  have been in every available width mode, including full power (the FEL
  contribution);
* an **idle-interval histogram** (after RAMZzz SC'12) for predicting ROO
  wakeup counts per idleness threshold;
* a sampled estimate of how many read packets arrive during one wakeup
  window (for ROO latency-overhead prediction, Section V-B);
* queuing-delay (QD) and queued-fraction (QF) statistics on response
  links for the network-aware congestion discount (Section VI-C).

Energy is charged per link *endpoint* (transmitter and receiver side
each burn ``HmcPowerModel.link_endpoint_w()`` scaled by the power state)
and split into the paper's idle-I/O / active-I/O buckets.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.core.mechanisms import (
    LinkModeState,
    MechanismConfig,
    ROO_THRESHOLDS_NS,
)
from repro.network.direction import LinkDir
from repro.network.packets import Packet, PacketKind
from repro.sim.engine import Simulator

__all__ = ["LinkDir", "LinkController", "LinkFaultState", "BUFFER_ENTRIES"]

#: Buffer entries per link controller (Section III-B).
BUFFER_ENTRIES: int = 128

#: Idle-interval histogram bucket lower edges, ascending.
_HIST_EDGES: Tuple[float, ...] = tuple(sorted(ROO_THRESHOLDS_NS))

#: Start a wakeup-arrival sample window every this many read arrivals.
_SAMPLE_PERIOD: int = 32

_M64 = (1 << 64) - 1


def _unit_uniform(seed: int, n: int) -> float:
    """Deterministic uniform in [0, 1) for draw ``n`` of stream ``seed``.

    A splitmix64 finalizer over ``seed + n``: stateless, identical in
    every process (unlike builtin ``hash``, which is randomized), and
    independent of how many events other links drew.
    """
    x = (seed * 0x9E3779B97F4A7C15 + n * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    x ^= x >> 31
    return (x >> 11) / float(1 << 53)


class LinkFaultState:
    """Fault windows and retry parameters for one link controller.

    Built by :class:`repro.faults.FaultInjector` from a
    :class:`~repro.faults.plan.FaultPlan`; ``LinkController.faults``
    stays ``None`` on unfaulted links so the fault-free hot path costs
    one attribute test, mirroring the tracing layer.

    CRC error decisions are drawn per transmission attempt from a
    stateless mix of ``seed`` and a per-link attempt counter --
    deterministic for a given plan no matter which executor or process
    runs the experiment, and guaranteed to terminate (each retry is a
    fresh draw, so a sub-1.0 error rate cannot livelock a packet).
    """

    __slots__ = (
        "seed",
        "crc_windows",
        "down_windows",
        "degrade_windows",
        "retry_ns",
        "draws",
        "crc_errors",
        "down_blocks",
        "degraded_tx",
        "trace",
    )

    def __init__(
        self,
        seed: int,
        crc: Optional[List[Tuple[float, float, float]]] = None,
        down: Optional[List[Tuple[float, float]]] = None,
        degrade: Optional[List[Tuple[float, float, float]]] = None,
        retry_ns: float = 48.0,
    ) -> None:
        self.seed = seed
        #: ``(start, end, error_rate)`` CRC burst windows, sorted.
        self.crc_windows = tuple(sorted(crc or ()))
        #: ``(start, end)`` link-down windows, sorted.
        self.down_windows = tuple(sorted(down or ()))
        #: ``(start, end, flit_time_factor)`` degraded-lane windows.
        self.degrade_windows = tuple(sorted(degrade or ()))
        self.retry_ns = retry_ns
        self.draws = 0
        self.crc_errors = 0
        self.down_blocks = 0
        self.degraded_tx = 0
        #: Optional tracer (``fault`` category), set by install_tracer.
        self.trace: Optional[Any] = None

    def crc_error(self, now: float) -> bool:
        """Whether the transmission finishing at ``now`` failed CRC."""
        for start, end, rate in self.crc_windows:
            if start <= now < end:
                self.draws += 1
                if _unit_uniform(self.seed, self.draws) < rate:
                    self.crc_errors += 1
                    return True
                return False
        return False

    def down_until(self, now: float) -> Optional[float]:
        """End of the down window covering ``now``, or ``None``."""
        for start, end in self.down_windows:
            if start <= now < end:
                return end
        return None

    def flit_scale(self, now: float) -> float:
        """Flit-time multiplier at ``now`` (1.0 outside degrade windows)."""
        for start, end, factor in self.degrade_windows:
            if start <= now < end:
                return factor
        return 1.0


class LinkController:
    """One unidirectional link plus its transmitter-side controller."""

    __slots__ = (
        "sim",
        "name",
        "direction",
        "src",
        "dst",
        "mech",
        "endpoint_w",
        "ledger_src",
        "ledger_dst",
        "deliver",
        "next_ctrl",
        "on_violation",
        "can_sleep",
        "roo_enabled",
        # queues / flow control
        "read_q",
        "write_q",
        "reserved",
        "_blocked_upstreams",
        # power / mode state
        "width_idx",
        "roo_idx",
        "is_off",
        "wake_until",
        "_trans_until",
        "_trans_from",
        "_off_gen",
        "_idle_since",
        "transmitting",
        "_seg_start",
        "_sleep_blocked",
        # lifetime stats
        "mode_time_ns",
        "off_time_ns",
        "busy_time_ns",
        "flits_tx",
        "packets_tx",
        "wakeups",
        "width_transitions",
        # fault injection (None unless a FaultPlan targets this link)
        "faults",
        "retries",
        "retry_flits",
        "retry_time_ns",
        # epoch counters
        "ams",
        "violated",
        "grants_used",
        "ep_vfree",
        "ep_vlat",
        "ep_actual_read_lat",
        "ep_reads",
        "ep_flits",
        "ep_busy_ns",
        "ep_mode_time_ns",
        "ep_hist_counts",
        "ep_hist_sums",
        "ep_qd",
        "ep_queued",
        "ep_resp_packets",
        "_sample_end",
        "_sample_arrivals",
        "_samples_total",
        "_samples_n",
        "_arrivals_since_sample",
        # ISP scratch
        "isp_src",
        "isp_dsrc",
        "isp_sel",
        # energy split
        "_ep_start",
        # observability (None unless the "link" trace category is on)
        "trace",
        "_tr_state",
        "_tr_start",
        # cached mode parameter tables (hot path)
        "_flit_times",
        "_serdes_times",
        "_power_fracs",
        "_off_frac",
        "_n_modes",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        direction: LinkDir,
        src: int,
        dst: int,
        mech: MechanismConfig,
        endpoint_w: float,
        ledger_src,
        ledger_dst,
    ) -> None:
        self.sim = sim
        self.name = name
        self.direction = direction
        self.src = src
        self.dst = dst
        self.mech = mech
        self.endpoint_w = endpoint_w
        self.ledger_src = ledger_src
        self.ledger_dst = ledger_dst

        #: Callback ``deliver(pkt, now)`` invoked when the last flit has
        #: crossed the wire and SERDES; wired up by the network.
        self.deliver: Callable[[Packet, float], None] = lambda pkt, now: None
        #: Routing callback: the controller a packet will be forwarded to
        #: after this hop (``None`` when it terminates at a vault or the
        #: processor).  Used for buffer back-pressure.
        self.next_ctrl: Optional[Callable[[Packet], Optional["LinkController"]]] = None
        #: Policy hook fired when this link exceeds its AMS.
        self.on_violation: Optional[Callable[["LinkController"], None]] = None
        #: Network-aware hook: response links may only sleep when this
        #: returns True (no outstanding reads below them).
        self.can_sleep: Optional[Callable[[], bool]] = None
        #: Whether ROO power-off is active this run (full-power baseline
        #: networks never power links off even with a ROO mechanism).
        self.roo_enabled = mech.has_roo

        self.read_q: Deque[Packet] = deque()
        self.write_q: Deque[Packet] = deque()
        self.reserved = 0
        self._blocked_upstreams: List["LinkController"] = []

        self.width_idx = 0
        self.roo_idx: Optional[int] = 0 if mech.has_roo else None
        self.is_off = False
        self.wake_until = 0.0
        self._trans_until = 0.0
        self._trans_from = 0
        self._off_gen = 0
        self._idle_since = 0.0
        self.transmitting = False
        self._seg_start = 0.0
        self._sleep_blocked = False

        n_modes = len(mech.width_modes)
        self.mode_time_ns = [0.0] * n_modes
        self.off_time_ns = 0.0
        self.busy_time_ns = 0.0
        self.flits_tx = 0
        self.packets_tx = 0
        self.wakeups = 0
        #: Lifetime count of width/voltage mode changes.  Transitions
        #: are charged at the higher of the two widths' power while
        #: residency is attributed to the new width, so this bounds the
        #: residency-reconstruction slack used by the validation layer.
        self.width_transitions = 0

        #: Optional :class:`LinkFaultState`; installed by
        #: :class:`repro.faults.FaultInjector` when a plan targets this
        #: link.  ``None`` keeps the fault-free path branch-predictable.
        self.faults: Optional[LinkFaultState] = None
        #: CRC retransmissions performed (HMC-style link retry).
        self.retries = 0
        #: Flits of failed transmissions that had to be re-sent.
        self.retry_flits = 0
        #: Wire time spent on retry turnaround + retransmissions (ns).
        self.retry_time_ns = 0.0

        self.ams = float("inf")
        self.violated = False
        self.grants_used = 0
        self.ep_vfree = [0.0] * n_modes
        self.ep_vlat = [0.0] * n_modes
        self.ep_actual_read_lat = 0.0
        self.ep_reads = 0
        self.ep_flits = 0
        self.ep_busy_ns = 0.0
        self.ep_mode_time_ns = [0.0] * n_modes
        self.ep_hist_counts = [0] * len(_HIST_EDGES)
        self.ep_hist_sums = [0.0] * len(_HIST_EDGES)
        self.ep_qd = 0.0
        self.ep_queued = 0
        self.ep_resp_packets = 0
        self._sample_end = -1.0
        self._sample_arrivals = 0
        self._samples_total = 0
        self._samples_n = 0
        self._arrivals_since_sample = 0

        self.isp_src = False
        self.isp_dsrc = 0
        self.isp_sel = LinkModeState(0, self.roo_idx)
        self._ep_start = 0.0
        #: Optional :class:`repro.obs.Tracer`; installed by
        #: :func:`repro.obs.install_tracer` when link tracing is on.
        self.trace: Optional[Any] = None
        self._tr_state = "w0"
        self._tr_start = 0.0
        self._flit_times = tuple(m.flit_time_ns() for m in mech.width_modes)
        self._serdes_times = tuple(m.serdes_ns for m in mech.width_modes)
        self._power_fracs = tuple(m.power_fraction for m in mech.width_modes)
        self._off_frac = mech.off_power_fraction
        self._n_modes = n_modes

    # ------------------------------------------------------------------
    # Mode parameter helpers
    # ------------------------------------------------------------------
    def _effective_width(self, now: float) -> Tuple[float, float, float]:
        """(flit_time, serdes, power_fraction) given any live transition.

        During a width/voltage transition the link runs at the narrower
        of the old and new widths while being charged the higher power.
        """
        w = self.width_idx
        if now < self._trans_until:
            o = self._trans_from
            return (
                max(self._flit_times[w], self._flit_times[o]),
                max(self._serdes_times[w], self._serdes_times[o]),
                max(self._power_fracs[w], self._power_fracs[o]),
            )
        return self._flit_times[w], self._serdes_times[w], self._power_fracs[w]

    def roo_threshold(self) -> Optional[float]:
        """Current idleness threshold, or ``None`` when ROO is unavailable."""
        if self.roo_idx is None or not self.roo_enabled:
            return None
        return self.mech.roo_thresholds[self.roo_idx]

    @property
    def queue_len(self) -> int:
        """Occupied buffer entries, including reserved in-flight slots."""
        return len(self.read_q) + len(self.write_q) + self.reserved

    def has_space(self) -> bool:
        """Whether another packet may be sent toward this controller."""
        return self.queue_len < BUFFER_ENTRIES

    # ------------------------------------------------------------------
    # Energy accounting
    # ------------------------------------------------------------------
    def _power_fraction_now(self, now: float) -> float:
        if self.is_off:
            return self.mech.off_power_fraction
        _ft, _sd, power = self._effective_width(now)
        return power

    def accrue(self, now: float) -> None:
        """Charge energy for the segment since the last state change."""
        seg = self._seg_start
        dt = now - seg
        if dt <= 0:
            self._seg_start = now
            return
        # Inlined _power_fraction_now(seg): this runs twice per packet
        # transmission, and the call + _effective_width indirection cost
        # more than the whole energy computation.  The arithmetic is
        # bit-identical: multiplying by 2.0 then 0.5 is an exact no-op
        # in binary floating point, so ``half`` below equals the
        # historical ``(2.0 * endpoint_w * frac * dt * 1e-9) * 0.5``.
        if self.is_off:
            frac = self._off_frac
        elif seg < self._trans_until:
            fracs = self._power_fracs
            frac = max(fracs[self.width_idx], fracs[self._trans_from])
        else:
            frac = self._power_fracs[self.width_idx]
        half = self.endpoint_w * frac * dt * 1e-9
        if self.transmitting:
            self.ledger_src.active_io_j += half
            self.ledger_dst.active_io_j += half
            self.busy_time_ns += dt
            self.ep_busy_ns += dt
        else:
            self.ledger_src.idle_io_j += half
            self.ledger_dst.idle_io_j += half
        if self.is_off:
            self.off_time_ns += dt
        else:
            self.mode_time_ns[self.width_idx] += dt
            self.ep_mode_time_ns[self.width_idx] += dt
        self._seg_start = now

    # ------------------------------------------------------------------
    # Observability (all no-ops while ``self.trace`` is None)
    # ------------------------------------------------------------------
    def _trace_transition(
        self, now: float, new_state: str, name: str, **fields
    ) -> None:
        """Close the open residency segment and record a transition event.

        ``link.state`` segments partition the link's lifetime by power
        state exactly as :meth:`accrue` attributes energy: by
        ``width_idx`` while on, ``"off"`` while off.  Summing their
        durations therefore reproduces ``mode_time_ns``/``off_time_ns``
        (the trace consistency test pins this).
        """
        trace = self.trace
        if now > self._tr_start:
            trace.emit(
                self._tr_start,
                "link",
                "link.state",
                dur_ns=now - self._tr_start,
                link=self.name,
                state=self._tr_state,
            )
        self._tr_start = now
        self._tr_state = new_state
        trace.emit(now, "link", name, link=self.name, **fields)

    def trace_finalize(self, now: float) -> None:
        """Close the final residency segment at the end of the window."""
        if self.trace is not None and now > self._tr_start:
            self.trace.emit(
                self._tr_start,
                "link",
                "link.state",
                dur_ns=now - self._tr_start,
                link=self.name,
                state=self._tr_state,
            )
            self._tr_start = now

    # ------------------------------------------------------------------
    # Packet path
    # ------------------------------------------------------------------
    def enqueue(self, pkt: Packet, now: float) -> None:
        """Accept ``pkt`` at the controller at time ``now``."""
        pkt.link_arrival = now
        was_idle = not self.transmitting and not self.read_q and not self.write_q
        if was_idle:
            self._record_idle_interval(now - self._idle_since)

        if pkt.is_read:
            self._update_delay_monitors(pkt, now)
            self._update_wake_sampling(now)
            self.read_q.append(pkt)
        else:
            self._advance_virtual_queues(pkt, now)
            self.write_q.append(pkt)

        if self.is_off:
            self._begin_wake(now)
            self.try_start(now)
        elif not self.transmitting:
            # Inlined try_start's first early-out: while a transmission
            # is in flight the call would return immediately, and
            # _finish_tx re-arms the link anyway.
            self.try_start(now)

    def _update_delay_monitors(self, pkt: Packet, now: float) -> None:
        """Per-mode virtual queues (delay monitor + counter of Ahn'14)."""
        flits = pkt.flits
        vfree = self.ep_vfree
        vlat = self.ep_vlat
        flit_times = self._flit_times
        # Track response-link queuing against the *full power* monitor.
        if self.direction is LinkDir.RESPONSE and pkt.kind is PacketKind.READ_RESP:
            self.ep_resp_packets += 1
            backlog = vfree[0] - now
            if backlog > 3 * flits * flit_times[0]:
                self.ep_queued += 1
                self.ep_qd += backlog
        # SERDES latency is pipelined (adds delay, not occupancy): the
        # virtual queue advances by serialization time only.
        serdes = self._serdes_times
        if self._n_modes == 1:
            # Single-width mechanisms (FP, ROO) dominate the fig5/fig9
            # pipelines; skip the loop machinery for them.
            v0 = vfree[0]
            start = v0 if v0 > now else now
            done = start + flits * flit_times[0]
            vfree[0] = done
            vlat[0] += (done + serdes[0]) - now
        else:
            for i in range(self._n_modes):
                start = vfree[i] if vfree[i] > now else now
                done = start + flits * flit_times[i]
                vfree[i] = done
                vlat[i] += (done + serdes[i]) - now
        self.ep_reads += 1

    def _advance_virtual_queues(self, pkt: Packet, now: float) -> None:
        """Writes occupy the virtual queues but add no read latency."""
        flits = pkt.flits
        vfree = self.ep_vfree
        flit_times = self._flit_times
        if self._n_modes == 1:
            v0 = vfree[0]
            start = v0 if v0 > now else now
            vfree[0] = start + flits * flit_times[0]
        else:
            for i in range(self._n_modes):
                start = vfree[i] if vfree[i] > now else now
                vfree[i] = start + flits * flit_times[i]

    def _update_wake_sampling(self, now: float) -> None:
        if now <= self._sample_end:
            self._sample_arrivals += 1
            return
        if self._sample_end >= 0:
            self._samples_total += self._sample_arrivals
            self._samples_n += 1
            self._sample_end = -1.0
            self._sample_arrivals = 0
        self._arrivals_since_sample += 1
        if self._arrivals_since_sample >= _SAMPLE_PERIOD:
            self._arrivals_since_sample = 0
            self._sample_end = now + self.mech.wake_ns

    def _record_idle_interval(self, length: float) -> None:
        if length <= 0:
            return
        idx = -1
        for i, edge in enumerate(_HIST_EDGES):
            if length >= edge:
                idx = i
            else:
                break
        if idx >= 0:
            self.ep_hist_counts[idx] += 1
            self.ep_hist_sums[idx] += length

    # -- transmission --------------------------------------------------
    def try_start(self, now: float) -> None:
        """Begin transmitting the highest-priority queued packet if possible."""
        if self.transmitting:
            return
        # Read-over-write priority: pick the source queue once and reuse
        # it for both the head peek and the eventual popleft.
        head_q = self.read_q or self.write_q
        if not head_q:
            return
        if self.is_off:
            self._begin_wake(now)
            return
        if now < self.wake_until:
            self.sim.schedule_at(self.wake_until, lambda: self.try_start(self.sim.now))
            return
        faults = self.faults
        if faults is not None:
            # Transient link-down window: hold queued traffic (idle
            # power, no reservations) and re-arm at the window's end.
            resume = faults.down_until(now)
            if resume is not None:
                faults.down_blocks += 1
                if faults.trace is not None:
                    faults.trace.emit(
                        now, "fault", "fault.down",
                        link=self.name, until=resume,
                    )
                self.sim.schedule_at(
                    resume, lambda: self.try_start(self.sim.now)
                )
                return
        next_ctrl = self.next_ctrl
        nxt = next_ctrl(head_q[0]) if next_ctrl is not None else None
        if nxt is not None:
            # Inlined nxt.has_space() / queue_len (hot path).
            if len(nxt.read_q) + len(nxt.write_q) + nxt.reserved >= BUFFER_ENTRIES:
                if self not in nxt._blocked_upstreams:
                    nxt._blocked_upstreams.append(self)
                return
            nxt.reserved += 1
        pkt = head_q.popleft()
        self.accrue(now)
        self.transmitting = True
        if now < self._trans_until:
            flit_time, serdes, _power = self._effective_width(now)
        else:
            w = self.width_idx
            flit_time = self._flit_times[w]
            serdes = self._serdes_times[w]
        if faults is not None:
            scale = faults.flit_scale(now)
            if scale != 1.0:
                # Degraded lanes: every flit serializes slower.
                flit_time *= scale
                faults.degraded_tx += 1
        # Inlined sim.schedule_at (one event per transmitted packet):
        # tx_done >= now by construction, so the past/NaN guard in
        # schedule_at can never fire here.
        sim = self.sim
        heappush(
            sim._queue,
            (
                now + pkt.flits * flit_time,
                sim._seq,
                lambda: self._finish_tx(pkt, serdes),
            ),
        )
        sim._seq += 1

    def _finish_tx(self, pkt: Packet, serdes: float) -> None:
        now = self.sim.now
        self.accrue(now)
        faults = self.faults
        if faults is not None and faults.crc_error(now):
            # HMC-style link retry: the receiver's CRC check failed, so
            # the packet is replayed from the transmitter's retry
            # buffer after a fixed turnaround (detection + retry
            # request + pointer rollback).  The link stays
            # ``transmitting`` through the whole recovery -- blocking
            # the queue and charging the turnaround as *active* I/O --
            # which is exactly the retry energy/latency cost the power
            # breakdown must show.
            self.retries += 1
            self.retry_flits += pkt.flits
            if faults.trace is not None:
                faults.trace.emit(
                    now, "fault", "link.retry",
                    link=self.name, flits=pkt.flits, retries=self.retries,
                )
            self.sim.schedule_at(
                now + faults.retry_ns, lambda: self._retransmit(pkt)
            )
            return
        self.transmitting = False
        flits = pkt.flits
        self.flits_tx += flits
        self.ep_flits += flits
        self.packets_tx += 1
        # pkt.is_read is the construction-time cache of kind.is_read
        # (READ_REQ or READ_RESP, i.e. not WRITE_REQ).
        if pkt.is_read:
            self.ep_actual_read_lat += (now + serdes) - pkt.link_arrival
            self._check_violation()
        if not self.read_q and not self.write_q:
            # Inlined _became_idle's no-ROO early-out (FP and width-only
            # mechanisms never arm a sleep timer).
            if self.roo_idx is None or not self.roo_enabled:
                self._idle_since = now
            else:
                self._became_idle(now)
        # The deliver callback receives the future wire+SERDES arrival
        # time and is responsible for scheduling its own continuation --
        # calling it synchronously here saves one event per hop.
        self.deliver(pkt, now + serdes)
        # Unblock upstream controllers waiting for buffer space.
        if self._blocked_upstreams:
            waiters, self._blocked_upstreams = self._blocked_upstreams, []
            for ctrl in waiters:
                ctrl.try_start(now)
        self.try_start(now)

    def _retransmit(self, pkt: Packet) -> None:
        """Replay ``pkt`` from the retry buffer after a CRC error.

        Timing parameters are re-read at retransmission time so a width
        transition or degrade window that began mid-recovery applies to
        the replay.  Down windows do not gate replays: the packet is
        already on the wire from the flow-control point of view.
        """
        now = self.sim.now
        if now < self._trans_until:
            flit_time, serdes, _power = self._effective_width(now)
        else:
            w = self.width_idx
            flit_time = self._flit_times[w]
            serdes = self._serdes_times[w]
        faults = self.faults
        if faults is not None:
            scale = faults.flit_scale(now)
            if scale != 1.0:
                flit_time *= scale
                faults.degraded_tx += 1
            tx = pkt.flits * flit_time
            self.retry_time_ns += faults.retry_ns + tx
        else:  # pragma: no cover - replays only exist with faults set
            tx = pkt.flits * flit_time
        sim = self.sim
        heappush(
            sim._queue, (now + tx, sim._seq, lambda: self._finish_tx(pkt, serdes))
        )
        sim._seq += 1

    def release_reservation(self) -> None:
        """Downstream handed the packet onward; free the reserved slot."""
        if self.reserved > 0:
            self.reserved -= 1

    # ------------------------------------------------------------------
    # ROO state machine
    # ------------------------------------------------------------------
    def start(self, now: float = 0.0) -> None:
        """Arm the initial idle timer (links begin idle and on)."""
        self._seg_start = now
        self._tr_start = now
        self._tr_state = f"w{self.width_idx}"
        self._became_idle(now)

    def _became_idle(self, now: float) -> None:
        self._idle_since = now
        threshold = self.roo_threshold()
        if threshold is None:
            return
        self._off_gen += 1
        gen = self._off_gen
        self.sim.schedule(threshold, lambda: self._try_sleep(gen))

    def _try_sleep(self, gen: int) -> None:
        if gen != self._off_gen or self.is_off or self.transmitting:
            return
        if self.roo_threshold() is None:
            return
        if self.read_q or self.write_q:
            return
        if self.can_sleep is not None and not self.can_sleep():
            self._sleep_blocked = True
            return
        now = self.sim.now
        self.accrue(now)
        self.is_off = True
        if self.trace is not None:
            self._trace_transition(now, "off", "link.off")

    def retry_sleep(self, now: float) -> None:
        """Re-attempt a sleep that was blocked by the network-aware hook."""
        if not self._sleep_blocked or self.is_off:
            return
        self._sleep_blocked = False
        if self.transmitting or self.read_q or self.write_q:
            return
        threshold = self.roo_threshold()
        if threshold is None:
            return
        if now - self._idle_since >= threshold:
            if self.can_sleep is None or self.can_sleep():
                self.accrue(now)
                self.is_off = True
                if self.trace is not None:
                    self._trace_transition(now, "off", "link.off")
        else:
            self._off_gen += 1
            gen = self._off_gen
            self.sim.schedule_at(
                self._idle_since + threshold, lambda: self._try_sleep(gen)
            )

    def _begin_wake(self, now: float) -> None:
        if not self.is_off:
            return
        self.accrue(now)
        self.is_off = False
        self._sleep_blocked = False
        self.wake_until = now + self.mech.wake_ns
        self.wakeups += 1
        if self.trace is not None:
            self._trace_transition(
                now, f"w{self.width_idx}", "link.wake", wakeups=self.wakeups
            )
        self.sim.schedule_at(self.wake_until, lambda: self.try_start(self.sim.now))

    def wake_proactively(self, now: float) -> None:
        """Start waking without a packet (response-link wakeup hiding)."""
        if self.is_off:
            self._begin_wake(now)

    # ------------------------------------------------------------------
    # Violation detection (feedback control, after Li et al. TOS'05)
    # ------------------------------------------------------------------
    def _check_violation(self) -> None:
        if self.violated or self.on_violation is None:
            return
        overhead = self.ep_actual_read_lat - self.ep_vlat[0]
        if overhead > self.ams:
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "link",
                    "link.violation",
                    link=self.name,
                    ams=self.ams,
                    overhead=overhead,
                )
            self.on_violation(self)

    def force_full_power(self, now: float) -> None:
        """Switch to the full-power mode until the end of the epoch."""
        self.violated = True
        self.set_mode(LinkModeState(0, 0 if self.roo_idx is not None else None), now)

    # ------------------------------------------------------------------
    # Mode control (called by management policies at epoch boundaries)
    # ------------------------------------------------------------------
    def set_mode(self, state: LinkModeState, now: float) -> None:
        """Apply a width/ROO mode, modeling transition latency."""
        self.accrue(now)
        old_width, old_roo = self.width_idx, self.roo_idx
        if state.width_index != self.width_idx:
            self._trans_from = self.width_idx
            self.width_idx = state.width_index
            self.width_transitions += 1
            if self.mech.width_transition_ns > 0:
                self._trans_until = now + self.mech.width_transition_ns
                self.sim.schedule_at(
                    self._trans_until, lambda: self.accrue(self.sim.now)
                )
        if self.mech.has_roo and state.roo_index is not None:
            self.roo_idx = state.roo_index
        if self.trace is not None and (
            self.width_idx != old_width or self.roo_idx != old_roo
        ):
            # Residency is attributed to the new width from this instant
            # (matching accrue) -- unless the link is off, in which case
            # the "off" segment continues and only the mode event fires.
            if self.width_idx != old_width and not self.is_off:
                self._trace_transition(
                    now,
                    f"w{self.width_idx}",
                    "link.mode",
                    from_width=old_width,
                    to_width=self.width_idx,
                    from_roo=old_roo,
                    to_roo=self.roo_idx,
                )
            else:
                self.trace.emit(
                    now,
                    "link",
                    "link.mode",
                    link=self.name,
                    from_width=old_width,
                    to_width=self.width_idx,
                    from_roo=old_roo,
                    to_roo=self.roo_idx,
                )
        # A mode change while idle re-arms the sleep timer with the new
        # threshold; while off the link simply stays off.
        if (
            not self.is_off
            and not self.transmitting
            and not self.read_q
            and not self.write_q
            and self.roo_threshold() is not None
        ):
            self._off_gen += 1
            gen = self._off_gen
            fire_at = max(now, self._idle_since + self.roo_threshold())
            self.sim.schedule_at(fire_at, lambda: self._try_sleep(gen))

    # ------------------------------------------------------------------
    # FLO estimation (Section V-B)
    # ------------------------------------------------------------------
    def flo_width(self, width_index: int) -> float:
        """Predicted latency overhead of running at ``width_index``."""
        return max(0.0, self.ep_vlat[width_index] - self.ep_vlat[0])

    def _avg_arrivals_during_wake(self) -> float:
        if self._samples_n == 0:
            return 0.0
        return self._samples_total / self._samples_n

    def wakeups_for_threshold(self, threshold: float) -> int:
        """Predicted wakeup count for an idleness ``threshold``."""
        return sum(
            c for c, edge in zip(self.ep_hist_counts, _HIST_EDGES) if edge >= threshold
        )

    def predicted_off_ns(self, threshold: float) -> float:
        """Predicted time the link would spend powered off at ``threshold``.

        Includes the idle interval still in progress right now (which
        costs no wakeup but does save power).
        """
        total = 0.0
        for count, total_len, edge in zip(
            self.ep_hist_counts, self.ep_hist_sums, _HIST_EDGES
        ):
            if edge >= threshold:
                total += total_len - count * threshold
        if not self.transmitting and not self.read_q and not self.write_q:
            open_idle = self.sim.now - self._idle_since
            if open_idle > threshold:
                total += open_idle - threshold
        return max(0.0, total)

    def flo_roo(self, roo_index: int) -> float:
        """Predicted latency overhead of ROO mode ``roo_index``.

        wakeups * [wake + wake * arrivals-during-wake], with an extra
        wake * arrivals term on request links to cover the amplified
        queueing that delayed requests inflict on response links
        (Section V-B, last paragraph).
        """
        if not self.mech.has_roo:
            return 0.0
        threshold = self.mech.roo_thresholds[roo_index]
        wakes = self.wakeups_for_threshold(threshold)
        if wakes == 0:
            return 0.0
        wake = self.mech.wake_ns
        arrivals = self._avg_arrivals_during_wake()
        per_wake = wake + wake * arrivals
        if self.direction is LinkDir.REQUEST:
            per_wake += wake * arrivals
        return wakes * per_wake

    def estimate_flo(self, state: LinkModeState) -> float:
        """FLO of a combined width+ROO state (sum of the parts)."""
        flo = self.flo_width(state.width_index)
        if state.roo_index is not None and self.mech.has_roo:
            flo += self.flo_roo(state.roo_index)
        return flo

    def predicted_power_fraction(self, state: LinkModeState, epoch_ns: float) -> float:
        """Predicted average power (fraction of full) in ``state``."""
        width_power = self.mech.width_modes[state.width_index].power_fraction
        if state.roo_index is None or not self.mech.has_roo or epoch_ns <= 0:
            return width_power
        threshold = self.mech.roo_thresholds[state.roo_index]
        off_frac = min(1.0, self.predicted_off_ns(threshold) / epoch_ns)
        return (
            width_power * (1.0 - off_frac) + self.mech.off_power_fraction * off_frac
        )

    def candidate_states(self) -> List[LinkModeState]:
        """All selectable (width, roo) states for this link's mechanism."""
        widths = range(len(self.mech.width_modes))
        if self.mech.has_roo:
            roos = range(len(self.mech.roo_thresholds))
            return [LinkModeState(w, r) for w in widths for r in roos]
        return [LinkModeState(w, None) for w in widths]

    # ------------------------------------------------------------------
    # Epoch bookkeeping
    # ------------------------------------------------------------------
    def current_utilization(self, epoch_ns: float) -> float:
        """Busy fraction of this link over the epoch (Figure 13's x-axis)."""
        if epoch_ns <= 0:
            return 0.0
        return min(1.0, self.ep_busy_ns / epoch_ns)

    def reset_epoch(self, now: float) -> None:
        """Close the epoch: flush energy and zero all epoch counters."""
        self.accrue(now)
        # An idle interval still open at the epoch boundary never ended
        # in a packet arrival this epoch, so it costs no wakeup: it is
        # consumed live by predicted_off_ns, never by the histogram.
        # Restart it so per-epoch idle accounting stays bounded.
        if not self.transmitting and not self.read_q and not self.write_q:
            self._idle_since = now
        if self._sample_end >= 0:
            self._samples_total += self._sample_arrivals
            self._samples_n += 1
            self._sample_end = -1.0
            self._sample_arrivals = 0
        n = len(self.mech.width_modes)
        self.ep_vfree = [max(v, now) for v in self.ep_vfree]
        base = max(self.ep_vfree[0], now)
        self.ep_vfree = [base] * n
        self.ep_vlat = [0.0] * n
        self.ep_actual_read_lat = 0.0
        self.ep_reads = 0
        self.ep_flits = 0
        self.ep_busy_ns = 0.0
        self.ep_mode_time_ns = [0.0] * n
        self.ep_hist_counts = [0] * len(_HIST_EDGES)
        self.ep_hist_sums = [0.0] * len(_HIST_EDGES)
        self.ep_qd = 0.0
        self.ep_queued = 0
        self.ep_resp_packets = 0
        self._samples_total = 0
        self._samples_n = 0
        self.violated = False
        self.grants_used = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkController({self.name}, {self.direction.value}, "
            f"{self.src}->{self.dst})"
        )
