"""Packet and flit definitions for the HMC-style memory network.

The HMC protocol moves traffic in 16-byte *flits*.  With 64 B cache
lines (Section II-B of the paper):

* a read request is a single header flit,
* a write request carries the header plus the 64 B line = 5 flits,
* a read response likewise carries 5 flits.

Writes are *posted*: the network does not generate write responses.  The
paper prioritizes reads over writes at link controllers because writes
do not typically sit on the critical path.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

__all__ = [
    "FLIT_BYTES",
    "LINE_BYTES",
    "PacketKind",
    "Packet",
    "flits_for",
]

#: Size of one flit in bytes (minimum traffic flow unit).
FLIT_BYTES: int = 16
#: Cache line size assumed throughout the paper.
LINE_BYTES: int = 64

#: Identifier of the processor endpoint in src/dest fields.
PROCESSOR: int = -1


class PacketKind(enum.Enum):
    """The three packet types that cross a memory network."""

    READ_REQ = "read_req"
    WRITE_REQ = "write_req"
    READ_RESP = "read_resp"

    @property
    def is_read(self) -> bool:
        """Whether this packet belongs to a read transaction."""
        return self in (PacketKind.READ_REQ, PacketKind.READ_RESP)

    @property
    def is_request(self) -> bool:
        """Whether this packet travels on request (downstream) links."""
        return self in (PacketKind.READ_REQ, PacketKind.WRITE_REQ)


#: Flit counts per packet kind, per Section II-B.
_FLITS = {
    PacketKind.READ_REQ: 1,
    PacketKind.WRITE_REQ: 1 + LINE_BYTES // FLIT_BYTES,
    PacketKind.READ_RESP: 1 + LINE_BYTES // FLIT_BYTES,
}


def flits_for(kind: PacketKind) -> int:
    """Number of flits a packet of ``kind`` occupies."""
    return _FLITS[kind]


_packet_ids = itertools.count()


class Packet:
    """A single request or response packet in flight.

    A plain ``__slots__`` class rather than a dataclass: packets are the
    single most-allocated object in a simulation (two per read, one per
    write), and slotted construction is both faster and smaller.

    Attributes
    ----------
    kind:
        Read request, write request, or read response.
    address:
        Physical byte address of the accessed line.
    dest:
        Destination module id (``PROCESSOR`` for responses).
    src:
        Originating endpoint (``PROCESSOR`` for requests).
    issue_time:
        Time the owning transaction was injected at the processor.
    stream:
        Index of the closed-loop workload stream that issued the access;
        used to resume the stream when the read completes.
    link_arrival:
        Time the packet arrived at the link controller it currently
        queues at.
    dram_start:
        Time the DRAM access for this transaction started (responses
        only).
    flits / is_read:
        Flit count and read flag, cached at construction (hot path).
    """

    __slots__ = (
        "kind",
        "address",
        "dest",
        "src",
        "issue_time",
        "stream",
        "pkt_id",
        "link_arrival",
        "dram_start",
        "flits",
        "is_read",
    )

    def __init__(
        self,
        kind: PacketKind,
        address: int,
        dest: int,
        src: int = PROCESSOR,
        issue_time: float = 0.0,
        stream: int = 0,
    ) -> None:
        self.kind = kind
        self.address = address
        self.dest = dest
        self.src = src
        self.issue_time = issue_time
        self.stream = stream
        self.pkt_id: int = next(_packet_ids)
        self.link_arrival: float = 0.0
        self.dram_start: Optional[float] = None
        self.flits: int = _FLITS[kind]
        self.is_read: bool = kind is not PacketKind.WRITE_REQ

    @property
    def bytes(self) -> int:
        """Wire footprint in bytes."""
        return self.flits * FLIT_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.pkt_id} {self.kind.value} addr=0x{self.address:x} "
            f"dest={self.dest})"
        )
