"""Packet and flit definitions for the HMC-style memory network.

The HMC protocol moves traffic in 16-byte *flits*.  With 64 B cache
lines (Section II-B of the paper):

* a read request is a single header flit,
* a write request carries the header plus the 64 B line = 5 flits,
* a read response likewise carries 5 flits.

Writes are *posted*: the network does not generate write responses.  The
paper prioritizes reads over writes at link controllers because writes
do not typically sit on the critical path.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "FLIT_BYTES",
    "LINE_BYTES",
    "PacketKind",
    "Packet",
    "flits_for",
]

#: Size of one flit in bytes (minimum traffic flow unit).
FLIT_BYTES: int = 16
#: Cache line size assumed throughout the paper.
LINE_BYTES: int = 64

#: Identifier of the processor endpoint in src/dest fields.
PROCESSOR: int = -1


class PacketKind(enum.Enum):
    """The three packet types that cross a memory network."""

    READ_REQ = "read_req"
    WRITE_REQ = "write_req"
    READ_RESP = "read_resp"

    @property
    def is_read(self) -> bool:
        """Whether this packet belongs to a read transaction."""
        return self in (PacketKind.READ_REQ, PacketKind.READ_RESP)

    @property
    def is_request(self) -> bool:
        """Whether this packet travels on request (downstream) links."""
        return self in (PacketKind.READ_REQ, PacketKind.WRITE_REQ)


#: Flit counts per packet kind, per Section II-B.
_FLITS = {
    PacketKind.READ_REQ: 1,
    PacketKind.WRITE_REQ: 1 + LINE_BYTES // FLIT_BYTES,
    PacketKind.READ_RESP: 1 + LINE_BYTES // FLIT_BYTES,
}


def flits_for(kind: PacketKind) -> int:
    """Number of flits a packet of ``kind`` occupies."""
    return _FLITS[kind]


_packet_ids = itertools.count()


@dataclass
class Packet:
    """A single request or response packet in flight.

    Attributes
    ----------
    kind:
        Read request, write request, or read response.
    address:
        Physical byte address of the accessed line.
    dest:
        Destination module id (``PROCESSOR`` for responses).
    src:
        Originating endpoint (``PROCESSOR`` for requests).
    issue_time:
        Time the owning transaction was injected at the processor.
    stream:
        Index of the closed-loop workload stream that issued the access;
        used to resume the stream when the read completes.
    """

    kind: PacketKind
    address: int
    dest: int
    src: int = PROCESSOR
    issue_time: float = 0.0
    stream: int = 0
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Time the packet arrived at the link controller it currently queues at.
    link_arrival: float = 0.0
    #: Time the DRAM access for this transaction started (responses only).
    dram_start: Optional[float] = None
    #: Flit count and read flag, cached at construction (hot path).
    flits: int = 0
    is_read: bool = False

    def __post_init__(self) -> None:
        self.flits = _FLITS[self.kind]
        self.is_read = self.kind is not PacketKind.WRITE_REQ

    @property
    def bytes(self) -> int:
        """Wire footprint in bytes."""
        return self.flits * FLIT_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.pkt_id} {self.kind.value} addr=0x{self.address:x} "
            f"dest={self.dest})"
        )
