"""Pipelined router model (Section III-B).

Each HMC's logic die routes packets between its links and its vaults
through a pipelined router clocked at the minimum single-flit transfer
time of the evaluated links (0.64 ns) with a four-cycle latency.
"""

from __future__ import annotations

__all__ = ["ROUTER_CLOCK_NS", "ROUTER_PIPELINE_CYCLES", "ROUTER_LATENCY_NS"]

#: Router clock period: one flit slot on a full-width link.
ROUTER_CLOCK_NS: float = 0.64
#: Pipeline depth of the router.
ROUTER_PIPELINE_CYCLES: int = 4
#: Per-traversal router latency.
ROUTER_LATENCY_NS: float = ROUTER_CLOCK_NS * ROUTER_PIPELINE_CYCLES
