"""Memory-network substrate: packets, topologies, links, routing."""

from repro.network.links import BUFFER_ENTRIES, LinkController, LinkDir
from repro.network.network import MemoryNetwork
from repro.network.packets import (
    FLIT_BYTES,
    LINE_BYTES,
    Packet,
    PacketKind,
    flits_for,
)
from repro.network.router import ROUTER_LATENCY_NS
from repro.network.topology import (
    Radix,
    Topology,
    TopologyError,
    TOPOLOGY_NAMES,
    build_topology,
)

__all__ = [
    "FLIT_BYTES",
    "LINE_BYTES",
    "Packet",
    "PacketKind",
    "flits_for",
    "Radix",
    "Topology",
    "TopologyError",
    "TOPOLOGY_NAMES",
    "build_topology",
    "LinkController",
    "LinkDir",
    "BUFFER_ENTRIES",
    "ROUTER_LATENCY_NS",
    "MemoryNetwork",
]
