"""Minimally connected memory-network topologies (Figure 3 of the paper).

A *minimally connected* topology is a tree rooted at the processor: every
available link attaches a brand-new module, which minimizes average and
worst-case hop distance and makes the network acyclic (no deadlock or
livelock avoidance logic required).

The HMC standard provides two module flavours:

* **high-radix** HMCs with four full links (eight unidirectional links),
* **low-radix** HMCs with two full links, at roughly half the area/power.

Every module spends one full link on its *connectivity link* toward the
processor (its parent), leaving three (high-radix) or one (low-radix)
full links for downstream children.

Topologies implemented, following our reading of Figure 3 (documented in
DESIGN.md):

``daisychain``
    A single chain of low-radix modules.
``ternary_tree``
    A complete ternary tree of high-radix modules (minimizes hop count).
``star``
    Rings of modules equidistant from the processor; a module is
    high-radix only when it needs two or more children.  For small
    networks this matches the ternary tree's hop distances while using
    fewer high-radix HMCs.
``ddrx_like``
    Rows of three modules; the center module of the first row attaches to
    the processor, modules chain horizontally within the first row, and
    each first-row module grows a vertical chain downward.  Capacity
    scales by adding rows, mirroring how DDRx DIMMs add ranks.
``box``
    An extra (not evaluated in the paper's result figures): star-like
    growth with rings capped at four modules.

Modules are numbered breadth-first from the processor so that module *i*
holds the *i*-th contiguous slice of physical memory: hot, low-numbered
address ranges land near the processor, matching the paper's mapping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.registry import Registry

__all__ = [
    "Radix",
    "Topology",
    "TopologyError",
    "build_topology",
    "daisychain",
    "ternary_tree",
    "star",
    "ddrx_like",
    "box",
    "TOPOLOGY_BUILDERS",
    "TOPOLOGY_NAMES",
]

#: Sentinel for the processor endpoint.
PROCESSOR: int = -1


class TopologyError(ValueError):
    """Raised for malformed or unsatisfiable topology requests."""


class Radix(enum.Enum):
    """HMC link radix per the HMC 2.1 specification."""

    HIGH = 4  #: four full links (eight unidirectional)
    LOW = 2  #: two full links (four unidirectional)

    @property
    def full_links(self) -> int:
        """Number of full (bidirectional) links the module provides."""
        return self.value

    @property
    def max_children(self) -> int:
        """Downstream links left after the connectivity link to the parent."""
        return self.value - 1


@dataclass
class Topology:
    """An immutable tree of memory modules rooted at the processor.

    ``parent[i]`` is the module upstream of module ``i`` (``PROCESSOR``
    for the root), ``children[i]`` lists downstream modules in ascending
    order, and ``radix[i]`` gives the module flavour.
    """

    name: str
    parent: List[int]
    radix: List[Radix]
    children: List[List[int]] = field(default_factory=list)
    _depths: List[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        n = len(self.parent)
        if n == 0:
            raise TopologyError("a topology needs at least one module")
        if len(self.radix) != n:
            raise TopologyError("parent and radix arrays must have equal length")
        if not self.children:
            self.children = [[] for _ in range(n)]
            for i, p in enumerate(self.parent):
                if p == PROCESSOR:
                    continue
                if not 0 <= p < n:
                    raise TopologyError(f"module {i} has out-of-range parent {p}")
                self.children[p].append(i)
        self._validate()
        self._depths = self._compute_depths()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        roots = [i for i, p in enumerate(self.parent) if p == PROCESSOR]
        if roots != [0]:
            raise TopologyError(
                f"exactly module 0 must attach to the processor, got roots={roots}"
            )
        for i, kids in enumerate(self.children):
            if len(kids) > self.radix[i].max_children:
                raise TopologyError(
                    f"module {i} ({self.radix[i].name} radix) has {len(kids)} "
                    f"children, max {self.radix[i].max_children}"
                )
        # Acyclicity / reachability: walking parents from every node must
        # reach the processor without revisiting a node.
        n = len(self.parent)
        for i in range(n):
            seen = set()
            node = i
            while node != PROCESSOR:
                if node in seen:
                    raise TopologyError(f"cycle detected through module {node}")
                seen.add(node)
                node = self.parent[node]
                if len(seen) > n:
                    raise TopologyError("parent chain exceeds module count")

    def _compute_depths(self) -> List[int]:
        depths = [0] * self.num_modules
        for i in range(self.num_modules):
            p = self.parent[i]
            depths[i] = 1 if p == PROCESSOR else depths[p] + 1
        return depths

    # ------------------------------------------------------------------
    @property
    def num_modules(self) -> int:
        """Number of memory modules in the network."""
        return len(self.parent)

    def depth(self, module: int) -> int:
        """Hop distance from the processor to ``module`` (root = 1)."""
        return self._depths[module]

    @property
    def max_depth(self) -> int:
        """Worst-case hop distance from the processor."""
        return max(self._depths)

    @property
    def avg_depth(self) -> float:
        """Average hop distance from the processor."""
        return sum(self._depths) / self.num_modules

    def path_from_processor(self, module: int) -> List[int]:
        """Modules traversed from the processor to ``module``, inclusive."""
        path: List[int] = []
        node = module
        while node != PROCESSOR:
            path.append(node)
            node = self.parent[node]
        path.reverse()
        return path

    def subtree(self, module: int) -> List[int]:
        """All modules at or below ``module`` (preorder)."""
        out: List[int] = []
        stack = [module]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(self.children[node]))
        return out

    def links_by_depth(self) -> Dict[int, int]:
        """``S(d)``: number of full connectivity links at hop distance ``d``.

        The connectivity link of module ``i`` sits at hop distance
        ``depth(i)``; used by the static fat/tapered-tree baseline.
        """
        counts: Dict[int, int] = {}
        for i in range(self.num_modules):
            d = self._depths[i]
            counts[d] = counts.get(d, 0) + 1
        return counts

    def num_high_radix(self) -> int:
        """Count of high-radix modules (area/leakage proxy)."""
        return sum(1 for r in self.radix if r is Radix.HIGH)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.name!r}, n={self.num_modules}, "
            f"max_depth={self.max_depth})"
        )


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
#: Registry of builders by name; decorate a ``(n: int) -> Topology``
#: callable with ``@TOPOLOGY_BUILDERS.register("name")`` to add one.
TOPOLOGY_BUILDERS: Registry = Registry("topology", error_cls=TopologyError)


@TOPOLOGY_BUILDERS.register("daisychain")
def daisychain(n: int) -> Topology:
    """A chain of ``n`` low-radix modules: processor - 0 - 1 - ... - n-1."""
    _check_n(n)
    parent = [PROCESSOR] + list(range(n - 1))
    radix = [Radix.LOW] * n
    return Topology("daisychain", parent, radix)


@TOPOLOGY_BUILDERS.register("ternary_tree")
def ternary_tree(n: int) -> Topology:
    """A complete ternary tree of ``n`` high-radix modules, BFS numbered."""
    _check_n(n)
    parent = [PROCESSOR] + [(i - 1) // 3 for i in range(1, n)]
    radix = [Radix.HIGH] * n
    return Topology("ternary_tree", parent, radix)


def _ring_growth(name: str, n: int, ring_cap: Optional[int] = None) -> Topology:
    """Shared ring-growth builder behind ``star`` and ``box``.

    Rings of modules equidistant from the processor: children of ring
    ``r`` are distributed round-robin over ring ``r``'s modules, each of
    which can anchor up to three children, so ring ``r+1`` holds at most
    ``3 * len(ring r)`` modules -- further capped at ``ring_cap`` when
    given.  A module becomes high-radix only when it receives two or
    more children; the root is always high-radix.
    """
    _check_n(n)
    parent = [PROCESSOR]
    child_count = [0]
    ring = [0]
    placed = 1
    while placed < n:
        capacity = 3 * len(ring)
        if ring_cap is not None:
            capacity = min(ring_cap, capacity)
        take = min(n - placed, capacity)
        next_ring: List[int] = []
        for j in range(take):
            p = ring[j % len(ring)]
            parent.append(p)
            child_count[p] += 1
            child_count.append(0)
            next_ring.append(placed)
            placed += 1
        ring = next_ring
    radix = [
        Radix.HIGH if (i == 0 or child_count[i] >= 2) else Radix.LOW
        for i in range(n)
    ]
    return Topology(name, parent, radix)


@TOPOLOGY_BUILDERS.register("star")
def star(n: int) -> Topology:
    """Rings of modules equidistant from the processor.

    Children of ring ``r`` are distributed round-robin over ring ``r``'s
    modules; a module becomes high-radix only when it receives two or
    more children.  The root is always high-radix (it anchors the first
    ring of up to three modules).
    """
    return _ring_growth("star", n)


@TOPOLOGY_BUILDERS.register("ddrx_like")
def ddrx_like(n: int, row_width: int = 3) -> Topology:
    """Rows of ``row_width`` modules, scaling by adding rows.

    Row 0 holds modules ``0..row_width-1``: module 0 (row center) attaches
    to the processor and the rest chain off it horizontally.  Module ``i``
    of each subsequent row hangs below module ``i`` of the previous row,
    forming ``row_width`` parallel vertical chains.  Radix: module 0 is
    high (up + two horizontal + one down); other row-0 modules and all
    deeper modules are low-radix except where the horizontal fan-out of
    row 0 requires more links.
    """
    _check_n(n)
    if row_width < 1:
        raise TopologyError("row_width must be >= 1")
    parent = [PROCESSOR]
    for i in range(1, n):
        if i < row_width:
            # Horizontal chain within row 0: 1 and 2 hang off 0, then 3
            # off 1, 4 off 2, ... for wider rows.
            parent.append(0 if i <= 2 else i - 2)
        else:
            parent.append(i - row_width)
    topo_children: List[int] = [0] * n
    for i in range(1, n):
        topo_children[parent[i]] += 1
    radix = []
    for i in range(n):
        need = topo_children[i] + 1
        if need > Radix.HIGH.full_links:
            raise TopologyError(
                f"ddrx_like row_width={row_width} needs {need} links at module {i}"
            )
        radix.append(Radix.LOW if need <= Radix.LOW.full_links else Radix.HIGH)
    return Topology("ddrx_like", parent, radix)


@TOPOLOGY_BUILDERS.register("box")
def box(n: int) -> Topology:
    """Star-like growth with rings capped at four modules (extra topology)."""
    return _ring_growth("box", n, ring_cap=4)


def _check_n(n: int) -> None:
    if n < 1:
        raise TopologyError(f"need at least one module, got {n}")


#: The four topologies evaluated in the paper's result figures.
TOPOLOGY_NAMES: Tuple[str, ...] = ("daisychain", "ternary_tree", "star", "ddrx_like")


def build_topology(name: str, n: int) -> Topology:
    """Build topology ``name`` with ``n`` modules.

    Raises
    ------
    TopologyError
        If ``name`` is unknown or ``n`` is invalid.
    """
    return TOPOLOGY_BUILDERS.get(name)(n)
