"""Memory-network assembly: modules, links, routing, and DRAM hand-off.

:class:`MemoryNetwork` instantiates one :class:`ModuleRuntime` per
topology node, a request/response link-controller pair per connectivity
link, and wires the delivery callbacks that move packets:

    processor --req--> module 0 --req--> ... --req--> destination vault
    destination --resp--> ... --resp--> module 0 --resp--> processor

Every router traversal costs :data:`ROUTER_LATENCY_NS` and charges
dynamic logic energy; every DRAM access charges dynamic DRAM energy and
goes through the vault timing model.  The network also implements the
two response-link wakeup strategies of the paper:

* ``response_wake_mode="module"`` (network-unaware, after MemBlaze):
  the destination module wakes its response link when its DRAM access
  starts, hiding that one link's wakeup under the ~30 ns DRAM latency;
* ``response_wake_mode="path"`` (network-aware, Section VI-B): every
  response link on the path to the processor wakes, staggered by the
  downstream link's router + SERDES + transmission latency, hiding all
  of them.  With ``aware_sleep_gating`` response links refuse to sleep
  while reads are outstanding anywhere in their subtree.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.core.mechanisms import MechanismConfig
from repro.dram.timing import DEFAULT_TIMING, DramTiming
from repro.network.links import LinkController, LinkDir
from repro.network.module import ModuleRuntime
from repro.network.packets import PROCESSOR, Packet, PacketKind
from repro.network.router import ROUTER_LATENCY_NS
from repro.network.topology import Topology
from repro.power.hmc_power import DEFAULT_POWER_MODEL, HmcPowerModel
from repro.sim.engine import Simulator

__all__ = ["MemoryNetwork"]


class MemoryNetwork:
    """A simulated network of HMCs behind a single processor channel."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        mechanism: MechanismConfig,
        mapping,
        power_model: HmcPowerModel = DEFAULT_POWER_MODEL,
        timing: DramTiming = DEFAULT_TIMING,
        roo_enabled: bool = True,
        link_mechanisms: Optional[Mapping[str, MechanismConfig]] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.mechanism = mechanism
        self.mapping = mapping
        self.power_model = power_model
        self.timing = timing
        #: Per-link mechanism overrides keyed by link name
        #: (``req:{parent}->{i}`` / ``resp:{i}->{parent}``); links absent
        #: from the mapping run the network-wide ``mechanism``.  Built
        #: from an ``ExperimentConfig.mechanism_overrides`` spec via
        #: :func:`repro.core.overrides.resolve_link_mechanisms`.
        self.link_mechanisms: Dict[str, MechanismConfig] = dict(
            link_mechanisms or {}
        )

        #: Hook fired when a read completes at the processor.
        self.on_read_complete: Optional[Callable[[Packet, float], None]] = None
        #: Additional read-completion listeners (metrics, stats); all are
        #: invoked after ``on_read_complete``.
        self.read_listeners: List[Callable[[Packet, float], None]] = []
        #: "none" | "module" | "path" (see module docstring).
        self.response_wake_mode: str = "none"
        #: Gate response-link sleep on subtree-outstanding reads.
        self.aware_sleep_gating: bool = False
        #: Optional :class:`repro.obs.Tracer` for ``dram.access`` events;
        #: installed by :func:`repro.obs.install_tracer` when the
        #: ``dram`` category is enabled.
        self.trace: Optional[Any] = None
        #: Optional :class:`repro.faults.VaultFaultTable`; installed by
        #: :class:`repro.faults.FaultInjector` when a plan schedules
        #: vault stalls.  ``None`` keeps the fault-free path to one test.
        self.vault_faults: Optional[Any] = None

        self.completed_reads = 0
        self.completed_writes = 0
        self.injected_reads = 0
        self.injected_writes = 0
        self.sum_read_latency_ns = 0.0
        self.max_read_latency_ns = 0.0
        #: Module traversals summed over injected accesses (reads cross
        #: each path module twice: request in, response out) -- Figure 6.
        self.sum_traversals = 0

        self.modules: List[ModuleRuntime] = [
            ModuleRuntime(i, topology.radix[i], timing)
            for i in range(topology.num_modules)
        ]
        self._route: List[Dict[int, int]] = [
            {} for _ in range(topology.num_modules)
        ]
        self._paths: List[List[int]] = []
        for d in range(topology.num_modules):
            path = topology.path_from_processor(d)
            self._paths.append(path)
            for k in range(len(path) - 1):
                self._route[path[k]][d] = path[k + 1]

        self._e_flit = {
            r: power_model.logic_energy_per_flit_j(r)
            for r in set(topology.radix)
        }
        self._e_access = {
            r: power_model.dram_energy_per_access_j(r)
            for r in set(topology.radix)
        }
        for module in self.modules:
            module.e_flit_j = self._e_flit[module.radix]
            module.e_access_j = self._e_access[module.radix]
        #: Path as ModuleRuntime objects (hot injection/completion path).
        self._path_modules: List[List[ModuleRuntime]] = [
            [self.modules[m] for m in path] for path in self._paths
        ]

        self._build_links(roo_enabled)
        self._root_req = self.modules[0].req_in

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_links(self, roo_enabled: bool) -> None:
        topo = self.topology
        endpoint_w = self.power_model.link_endpoint_w()
        overrides = self.link_mechanisms
        self._links: List[LinkController] = []
        for i, module in enumerate(self.modules):
            parent = topo.parent[i]
            parent_ledger = (
                self.modules[parent].ledger if parent != PROCESSOR else module.ledger
            )
            req_name = f"req:{parent}->{i}"
            resp_name = f"resp:{i}->{parent}"
            req = LinkController(
                self.sim,
                name=req_name,
                direction=LinkDir.REQUEST,
                src=parent,
                dst=i,
                mech=overrides.get(req_name, self.mechanism),
                endpoint_w=endpoint_w,
                ledger_src=parent_ledger,
                ledger_dst=module.ledger,
            )
            resp = LinkController(
                self.sim,
                name=resp_name,
                direction=LinkDir.RESPONSE,
                src=i,
                dst=parent,
                mech=overrides.get(resp_name, self.mechanism),
                endpoint_w=endpoint_w,
                ledger_src=module.ledger,
                ledger_dst=parent_ledger,
            )
            req.roo_enabled = roo_enabled and req.mech.has_roo
            resp.roo_enabled = roo_enabled and resp.mech.has_roo
            module.req_in = req
            module.resp_out = resp
            module.children = list(topo.children[i])

            req.deliver = self._make_req_deliver(i)
            resp.deliver = self._make_resp_deliver(i)
            resp.next_ctrl = self._make_resp_next(i)
            self._links.append(req)
            self._links.append(resp)
        # dest -> next-hop request controller, resolved once per module
        # (saves a route lookup plus a modules[] index per forwarded
        # packet).  Request next_ctrl closures bind these dicts, so they
        # are wired in a second pass once every controller exists.
        self._route_req: List[Dict[int, LinkController]] = [
            {dest: self.modules[child].req_in for dest, child in routes.items()}
            for routes in self._route
        ]
        for i, module in enumerate(self.modules):
            module.req_in.next_ctrl = self._make_req_next(i)
        built = {link.name for link in self._links}
        unknown = sorted(set(self.link_mechanisms) - built)
        if unknown:
            raise ValueError(
                f"link_mechanisms names unknown links {unknown}; "
                f"this topology has {sorted(built)}"
            )
        # Mechanism aggregates over the (possibly heterogeneous) link
        # set.  With no overrides these equal the network-wide
        # mechanism's own flags (independent of ``roo_enabled``, exactly
        # like the ``self.mechanism.has_roo`` guards they replace),
        # keeping homogeneous runs bit-identical.
        self._has_roo_links = any(link.mech.has_roo for link in self._links)
        self._has_width_scaling_links = any(
            link.mech.has_width_scaling for link in self._links
        )

    def _make_req_next(self, i: int):
        route = self._route_req[i]

        def next_ctrl(pkt: Packet) -> Optional[LinkController]:
            if pkt.dest == i:
                return None
            return route[pkt.dest]

        return next_ctrl

    def _make_resp_next(self, i: int):
        parent = self.topology.parent[i]
        if parent == PROCESSOR:
            return lambda pkt: None
        resp = lambda pkt: self.modules[parent].resp_out
        return resp

    def _make_req_deliver(self, i: int):
        module = self.modules[i]
        ledger = module.ledger
        sim = self.sim
        after = self._after_req_router

        def deliver(pkt: Packet, now: float) -> None:
            # Inlined _charge_router and schedule_at (one router hop per
            # packet per module; ``now`` is a future arrival time, so
            # the past/NaN guard can never fire).
            flits = pkt.flits
            module.flits_routed += flits
            ledger.logic_dyn_j += module.e_flit_j * flits
            heappush(
                sim._queue, (now + ROUTER_LATENCY_NS, sim._seq, lambda: after(i, pkt))
            )
            sim._seq += 1

        return deliver

    def _after_req_router(self, i: int, pkt: Packet) -> None:
        now = self.sim.now
        if pkt.dest == i:
            self._at_destination(i, pkt, now)
            return
        target = self._route_req[i][pkt.dest]
        target.release_reservation()
        target.enqueue(pkt, now)

    def _make_resp_deliver(self, i: int):
        parent = self.topology.parent[i]
        if parent == PROCESSOR:

            def deliver_to_processor(pkt: Packet, now: float) -> None:
                # ``now`` is the future arrival time (deliver fires at
                # transmit-finish); defer completion to that instant.
                self.sim.schedule_at(now, lambda: self._complete_read(pkt, now))

            return deliver_to_processor

        parent_module = self.modules[parent]
        ledger = parent_module.ledger
        sim = self.sim
        after = self._after_resp_router

        def deliver(pkt: Packet, now: float) -> None:
            # Inlined _charge_router and schedule_at, as on the request
            # side.
            flits = pkt.flits
            parent_module.flits_routed += flits
            ledger.logic_dyn_j += parent_module.e_flit_j * flits
            heappush(
                sim._queue,
                (now + ROUTER_LATENCY_NS, sim._seq, lambda: after(parent, pkt)),
            )
            sim._seq += 1

        return deliver

    def _after_resp_router(self, parent: int, pkt: Packet) -> None:
        target = self.modules[parent].resp_out
        target.release_reservation()
        target.enqueue(pkt, self.sim.now)

    # ------------------------------------------------------------------
    # DRAM hand-off
    # ------------------------------------------------------------------
    def _charge_router(self, module: ModuleRuntime, pkt: Packet) -> None:
        flits = pkt.flits
        module.flits_routed += flits
        module.ledger.logic_dyn_j += module.e_flit_j * flits

    def _at_destination(self, i: int, pkt: Packet, now: float) -> None:
        module = self.modules[i]
        is_read = pkt.kind is PacketKind.READ_REQ
        if is_read:
            module.ep_dram_reads += 1
            module.dram_reads += 1
            # Guard inlined: with wakeup hiding disabled (the common
            # fig5 baseline) _wake_response_path is a no-op per read.
            if self.response_wake_mode != "none" and self._has_roo_links:
                self._wake_response_path(i, now)
        module.ledger.dram_dyn_j += module.e_access_j
        access = module.vaults.access(now, pkt.address, is_read)
        data_ready = access.data_ready
        done = access.done
        vault_faults = self.vault_faults
        if vault_faults is not None:
            # Vault-stall fault window: the access itself proceeds, but
            # its completion (and therefore the response) is delayed.
            stall = vault_faults.stall_ns(i, now)
            if stall > 0.0:
                data_ready += stall
                done += stall
        if self.trace is not None:
            vault, bank = module.vaults.map_address(pkt.address)
            self.trace.emit(
                now,
                "dram",
                "dram.access",
                module=i,
                vault=vault,
                bank=bank,
                read=is_read,
                start=access.start,
                data_ready=access.data_ready,
                done=access.done,
            )
        sim = self.sim
        if is_read:
            resp = Packet(
                PacketKind.READ_RESP,
                pkt.address,
                PROCESSOR,
                i,
                pkt.issue_time,
                pkt.stream,
            )
            resp.dram_start = access.start
            # Inlined schedule_at: data_ready >= now by construction.
            heappush(
                sim._queue,
                (
                    data_ready,
                    sim._seq,
                    lambda: module.resp_out.enqueue(resp, sim.now),
                ),
            )
        else:
            heappush(sim._queue, (done, sim._seq, self._count_write_done))
        sim._seq += 1

    def _count_write_done(self) -> None:
        self.completed_writes += 1

    # ------------------------------------------------------------------
    # Response-link wakeup strategies (Sections V and VI-B)
    # ------------------------------------------------------------------
    def _wake_response_path(self, dest: int, now: float) -> None:
        mode = self.response_wake_mode
        if mode == "none" or not self._has_roo_links:
            return
        if mode == "module":
            self.modules[dest].resp_out.wake_proactively(now)
            return
        if mode != "path":
            raise ValueError(f"unknown response_wake_mode {mode!r}")
        t = now
        node = dest
        while node != PROCESSOR:
            link = self.modules[node].resp_out
            if t <= now:
                link.wake_proactively(now)
            else:
                self.sim.schedule_at(
                    t, (lambda l: lambda: l.wake_proactively(self.sim.now))(link)
                )
            flit_time, serdes, _power = link._effective_width(t)
            t += ROUTER_LATENCY_NS + serdes + 5 * flit_time
            node = self.topology.parent[node]

    # ------------------------------------------------------------------
    # Injection / completion (the processor side)
    # ------------------------------------------------------------------
    def inject_read(self, address: int, now: float, stream: int = 0) -> None:
        """Issue a read for ``address`` from the processor at ``now``.

        A ``now`` in the simulator's future is scheduled rather than
        injected immediately, so callers may pre-program arrivals.
        """
        if now > self.sim.now:
            self.sim.schedule_at(
                now, lambda: self._inject_read_now(address, stream)
            )
            return
        self._inject_read_now(address, stream)

    def _inject_read_now(self, address: int, stream: int) -> None:
        now = self.sim.now
        dest = self.mapping.module_of(address)
        pkt = Packet(PacketKind.READ_REQ, address, dest, PROCESSOR, now, stream)
        path = self._path_modules[dest]
        for m in path:
            m.outstanding_subtree_reads += 1
        self.injected_reads += 1
        self.sum_traversals += 2 * len(path)
        self._root_req.enqueue(pkt, now)

    def inject_write(self, address: int, now: float, stream: int = 0) -> None:
        """Issue a posted write for ``address`` at ``now``.

        Future timestamps are scheduled, as with :meth:`inject_read`.
        """
        if now > self.sim.now:
            self.sim.schedule_at(
                now, lambda: self._inject_write_now(address, stream)
            )
            return
        self._inject_write_now(address, stream)

    def _inject_write_now(self, address: int, stream: int) -> None:
        now = self.sim.now
        dest = self.mapping.module_of(address)
        pkt = Packet(PacketKind.WRITE_REQ, address, dest, PROCESSOR, now, stream)
        self.injected_writes += 1
        self.sum_traversals += len(self._path_modules[dest])
        self._root_req.enqueue(pkt, now)

    def _complete_read(self, pkt: Packet, now: float) -> None:
        latency = now - pkt.issue_time
        self.completed_reads += 1
        self.sum_read_latency_ns += latency
        if latency > self.max_read_latency_ns:
            self.max_read_latency_ns = latency
        gating = self.aware_sleep_gating
        for module in self._path_modules[pkt.src]:
            module.outstanding_subtree_reads -= 1
            if (
                gating
                and module.outstanding_subtree_reads == 0
                and module.resp_out is not None
            ):
                module.resp_out.retry_sleep(now)
        if self.on_read_complete is not None:
            self.on_read_complete(pkt, now)
        for listener in self.read_listeners:
            listener(pkt, now)

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm link idle timers; call once before running the simulator."""
        if self.aware_sleep_gating:
            for module in self.modules:
                link = module.resp_out
                mod = module
                link.can_sleep = (
                    lambda m=mod: m.outstanding_subtree_reads == 0
                )
        for link in self.all_links():
            link.start(self.sim.now)

    @property
    def has_roo_links(self) -> bool:
        """Whether any link's mechanism supports row-open/off (ROO)."""
        return self._has_roo_links

    @property
    def has_width_scaling_links(self) -> bool:
        """Whether any link's mechanism supports width scaling."""
        return self._has_width_scaling_links

    def all_links(self) -> List[LinkController]:
        """Every unidirectional link controller in the network.

        Returns a fresh copy of the list built at construction time
        (request then response per module, in module order) so callers
        may mutate it freely.
        """
        return list(self._links)

    @property
    def channel_req(self) -> LinkController:
        """The processor-to-network request link."""
        return self.modules[0].req_in

    @property
    def channel_resp(self) -> LinkController:
        """The network-to-processor response link."""
        return self.modules[0].resp_out

    @property
    def avg_read_latency_ns(self) -> float:
        """Mean end-to-end read latency so far."""
        if not self.completed_reads:
            return 0.0
        return self.sum_read_latency_ns / self.completed_reads

    def finalize(self, window_ns: float) -> None:
        """Close energy accounting: flush links and charge leakage."""
        now = self.sim.now
        for link in self.all_links():
            link.accrue(now)
            link.trace_finalize(now)
        for module in self.modules:
            leak_dram = self.power_model.dram_leakage_w(module.radix)
            leak_logic = self.power_model.logic_leakage_w(module.radix)
            module.ledger.dram_leak_j += leak_dram * window_ns * 1e-9
            module.ledger.logic_leak_j += leak_logic * window_ns * 1e-9
