"""Link direction enum (leaf module, import-cycle free).

Defined separately from :mod:`repro.network.links` so policy code can
use :class:`LinkDir` without importing the link-controller machinery.
"""

from __future__ import annotations

import enum

__all__ = ["LinkDir"]


class LinkDir(enum.Enum):
    """Traffic direction relative to the processor."""

    REQUEST = "request"  #: away from the processor (downstream)
    RESPONSE = "response"  #: toward the processor (upstream)
