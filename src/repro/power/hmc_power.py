"""HMC power model, after Pugsley et al. (IEEE Micro 2014), Section III-B.

A high-radix HMC with 12.5 Gbps lanes peaks at 13.4 W, attributed

* 43 % to the DRAM dies,
* 22 % to the logic portion of the logic die ("logic"),
* 35 % to the I/O links.

When idle, DRAM consumes 10 % of its peak, logic 25 % of its peak, and
I/O the *same as active* -- high-speed links keep transmitting to stay
synchronized, which is precisely the problem the paper attacks.

Low-radix HMCs (two full links instead of four) are assumed to peak at
half the power with the same relative breakdown, following the paper's
"peak power proportional to bandwidth" assumption.  Conveniently this
makes per-link-endpoint I/O power identical across radices:

    high: 13.4 * 0.35 / (4 links * 2 dirs) = 0.586 W per endpoint
    low:   6.7 * 0.35 / (2 links * 2 dirs) = 0.586 W per endpoint

Dynamic (utilization-proportional) DRAM and logic energy are derived by
spreading the active-minus-idle power over the module's peak throughput,
which also comes out radix-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mechanisms import FLIT_TIME_FULL_NS
from repro.dram.timing import DEFAULT_TIMING, DramTiming
from repro.network.topology import Radix

__all__ = ["HmcPowerModel", "DEFAULT_POWER_MODEL"]


@dataclass(frozen=True)
class HmcPowerModel:
    """Peak power and breakdown for networked HMC modules."""

    high_radix_peak_w: float = 13.4
    dram_fraction: float = 0.43
    logic_fraction: float = 0.22
    io_fraction: float = 0.35
    dram_idle_fraction: float = 0.10
    logic_idle_fraction: float = 0.25
    lane_gbps: float = 12.5
    timing: DramTiming = DEFAULT_TIMING

    def __post_init__(self) -> None:
        total = self.dram_fraction + self.logic_fraction + self.io_fraction
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"power fractions must sum to 1, got {total}")

    # ------------------------------------------------------------------
    # Peak power per component
    # ------------------------------------------------------------------
    def peak_w(self, radix: Radix) -> float:
        """Peak module power: 13.4 W high radix, half that for low."""
        scale = 1.0 if radix is Radix.HIGH else 0.5
        return self.high_radix_peak_w * scale

    def dram_peak_w(self, radix: Radix) -> float:
        """Peak power of the stacked DRAM dies."""
        return self.peak_w(radix) * self.dram_fraction

    def logic_peak_w(self, radix: Radix) -> float:
        """Peak power of the logic-die routing/control logic."""
        return self.peak_w(radix) * self.logic_fraction

    def io_peak_w(self, radix: Radix) -> float:
        """Peak power of all the module's I/O link endpoints."""
        return self.peak_w(radix) * self.io_fraction

    # ------------------------------------------------------------------
    # Leakage / idle power
    # ------------------------------------------------------------------
    def dram_leakage_w(self, radix: Radix) -> float:
        """Idle (leakage) power of the DRAM dies: 10 % of their peak."""
        return self.dram_peak_w(radix) * self.dram_idle_fraction

    def logic_leakage_w(self, radix: Radix) -> float:
        """Idle power of the logic: 25 % of its peak."""
        return self.logic_peak_w(radix) * self.logic_idle_fraction

    # ------------------------------------------------------------------
    # Per-link I/O power
    # ------------------------------------------------------------------
    def link_endpoint_w(self, radix: Radix = Radix.HIGH) -> float:
        """Full power of one unidirectional-link endpoint (TX or RX side).

        Radix-independent by construction (0.586 W with defaults); the
        ``radix`` argument documents intent at call sites.
        """
        return self.io_peak_w(radix) / (radix.full_links * 2)

    # ------------------------------------------------------------------
    # Dynamic energy coefficients
    # ------------------------------------------------------------------
    def dram_energy_per_access_j(self, radix: Radix = Radix.HIGH) -> float:
        """Dynamic DRAM energy of one 64 B access.

        Spreads the active power (peak minus leakage) over the module's
        peak access rate.  Low-radix modules are assumed to sustain half
        the rate (their links cap bandwidth), making the per-access
        energy radix-independent (~1.3 nJ with defaults).
        """
        active_w = self.dram_peak_w(radix) - self.dram_leakage_w(radix)
        rate = self.timing.max_accesses_per_ns * 1e9  # accesses per second
        if radix is Radix.LOW:
            rate *= 0.5
        return active_w / rate

    def logic_energy_per_flit_j(self, radix: Radix = Radix.HIGH) -> float:
        """Dynamic logic energy to route one flit through the logic die.

        Spreads active logic power over the router's peak flit rate (one
        flit per link per 0.64 ns slot across all unidirectional links).
        Radix-independent with the half-peak low-radix assumption.
        """
        active_w = self.logic_peak_w(radix) - self.logic_leakage_w(radix)
        links = radix.full_links * 2
        peak_flits_per_s = links / FLIT_TIME_FULL_NS * 1e9
        return active_w / peak_flits_per_s


#: The paper's published model.
DEFAULT_POWER_MODEL = HmcPowerModel()
