"""Power substrate: HMC power model and energy accounting."""

from repro.power.accounting import EnergyLedger, PowerBreakdown
from repro.power.hmc_power import DEFAULT_POWER_MODEL, HmcPowerModel

__all__ = ["HmcPowerModel", "DEFAULT_POWER_MODEL", "EnergyLedger", "PowerBreakdown"]
