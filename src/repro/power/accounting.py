"""Energy accounting: the six power buckets of Figure 5.

Every module owns an :class:`EnergyLedger` accumulating joules in the
six categories the paper reports:

* **idle I/O** -- link-endpoint energy while not moving application data
  (the dominant bucket, and the paper's target),
* **active I/O** -- link-endpoint energy while transmitting packets,
* **logic leakage / logic dynamic**,
* **DRAM leakage / DRAM dynamic**.

Link energy is charged per *endpoint*: each unidirectional link burns
power at both its transmitter and receiver chip; the module-side ledger
of each endpoint takes its half.  The processor-side endpoint of the
channel link is charged to module 0's ledger so "total network power"
covers the whole network interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

__all__ = ["EnergyLedger", "PowerBreakdown"]


@dataclass
class EnergyLedger:
    """Joules accumulated per power category for one module."""

    idle_io_j: float = 0.0
    active_io_j: float = 0.0
    logic_leak_j: float = 0.0
    logic_dyn_j: float = 0.0
    dram_leak_j: float = 0.0
    dram_dyn_j: float = 0.0

    @property
    def io_j(self) -> float:
        """Total I/O energy (idle + active)."""
        return self.idle_io_j + self.active_io_j

    @property
    def total_j(self) -> float:
        """Total energy across all six categories."""
        return (
            self.idle_io_j
            + self.active_io_j
            + self.logic_leak_j
            + self.logic_dyn_j
            + self.dram_leak_j
            + self.dram_dyn_j
        )

    def add(self, other: "EnergyLedger") -> None:
        """Accumulate ``other`` into this ledger in place."""
        self.idle_io_j += other.idle_io_j
        self.active_io_j += other.active_io_j
        self.logic_leak_j += other.logic_leak_j
        self.logic_dyn_j += other.logic_dyn_j
        self.dram_leak_j += other.dram_leak_j
        self.dram_dyn_j += other.dram_dyn_j


#: Display order of the Figure 5 stack.
_CATEGORIES = (
    "idle_io",
    "active_io",
    "logic_leak",
    "logic_dyn",
    "dram_leak",
    "dram_dyn",
)


@dataclass
class PowerBreakdown:
    """Average power (watts) per category, the unit of Figures 5/8/11.

    Built from one or many ledgers over a simulated window; ``per_hmc``
    divides by the module count as the paper's per-HMC plots do.
    """

    watts: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_ledgers(
        cls, ledgers: Iterable[EnergyLedger], window_ns: float, num_modules: int
    ) -> "PowerBreakdown":
        """Average per-HMC power from per-module ledgers over a window."""
        if window_ns <= 0:
            raise ValueError("window must be positive")
        if num_modules < 1:
            raise ValueError("need at least one module")
        total = EnergyLedger()
        for ledger in ledgers:
            total.add(ledger)
        seconds = window_ns * 1e-9
        scale = 1.0 / (seconds * num_modules)
        watts = {
            "idle_io": total.idle_io_j * scale,
            "active_io": total.active_io_j * scale,
            "logic_leak": total.logic_leak_j * scale,
            "logic_dyn": total.logic_dyn_j * scale,
            "dram_leak": total.dram_leak_j * scale,
            "dram_dyn": total.dram_dyn_j * scale,
        }
        return cls(watts=watts)

    @property
    def total_w(self) -> float:
        """Total average power per HMC."""
        return sum(self.watts.values())

    @property
    def io_w(self) -> float:
        """I/O power per HMC (idle + active)."""
        return self.watts["idle_io"] + self.watts["active_io"]

    @property
    def idle_io_fraction(self) -> float:
        """Idle I/O power as a fraction of total (Figure 8's metric)."""
        total = self.total_w
        return self.watts["idle_io"] / total if total else 0.0

    @property
    def io_fraction(self) -> float:
        """I/O power as a fraction of total (the paper's 73 % headline)."""
        total = self.total_w
        return self.io_w / total if total else 0.0

    def as_row(self) -> List[float]:
        """Values in Figure 5 stack order."""
        return [self.watts[c] for c in _CATEGORIES]

    @staticmethod
    def categories() -> List[str]:
        """Category names in Figure 5 stack order."""
        return list(_CATEGORIES)
