"""Analytical models: queueing theory and closed-form power predictions."""

from repro.analysis.power_model import (
    predict_full_power_breakdown,
    predict_idle_io_fraction,
)
from repro.analysis.queueing import (
    LinkLoadModel,
    link_service_time_ns,
    link_utilization,
    md1_latency_ns,
    md1_wait_ns,
)

__all__ = [
    "md1_wait_ns",
    "md1_latency_ns",
    "link_service_time_ns",
    "link_utilization",
    "LinkLoadModel",
    "predict_full_power_breakdown",
    "predict_idle_io_fraction",
]
