"""Analytical queueing cross-checks for the link model.

A packet link with Poisson arrivals and deterministic service is an
M/D/1 queue; its mean waiting time has the closed form

    W = rho * S / (2 * (1 - rho))

with service time ``S`` and utilization ``rho``.  These helpers predict
link latency and utilization analytically so tests (and users) can
sanity-check the event-driven simulator against theory, and so
back-of-envelope capacity planning doesn't need a simulation at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.mechanisms import FLIT_TIME_FULL_NS, SERDES_FULL_NS

__all__ = [
    "md1_wait_ns",
    "md1_latency_ns",
    "link_service_time_ns",
    "link_utilization",
    "LinkLoadModel",
]


def md1_wait_ns(service_ns: float, rho: float) -> float:
    """Mean M/D/1 queueing delay (excluding service).

    Raises
    ------
    ValueError
        If ``rho`` is not in [0, 1) -- the queue is unstable at 1.
    """
    if not 0 <= rho < 1:
        raise ValueError(f"utilization must be in [0, 1), got {rho}")
    return rho * service_ns / (2 * (1 - rho))


def md1_latency_ns(service_ns: float, rho: float, pipeline_ns: float = 0.0) -> float:
    """Mean sojourn time: wait + service + pipeline latency."""
    return md1_wait_ns(service_ns, rho) + service_ns + pipeline_ns


def link_service_time_ns(flits: int, bw_fraction: float = 1.0) -> float:
    """Serialization time of a packet on a (possibly narrowed) link."""
    if bw_fraction <= 0:
        raise ValueError("bandwidth fraction must be positive")
    return flits * FLIT_TIME_FULL_NS / bw_fraction


def link_utilization(packets_per_ns: float, flits: int, bw_fraction: float = 1.0) -> float:
    """Offered utilization of a link for a given packet rate."""
    return packets_per_ns * link_service_time_ns(flits, bw_fraction)


@dataclass(frozen=True)
class LinkLoadModel:
    """Analytic latency/power of one unidirectional link under load.

    ``packets_per_ns`` of uniform ``flits``-sized packets on a link at
    ``bw_fraction`` width.
    """

    packets_per_ns: float
    flits: int = 5
    bw_fraction: float = 1.0

    @property
    def service_ns(self) -> float:
        """Per-packet serialization time."""
        return link_service_time_ns(self.flits, self.bw_fraction)

    @property
    def utilization(self) -> float:
        """Offered load as a fraction of link capacity."""
        return self.packets_per_ns * self.service_ns

    @property
    def stable(self) -> bool:
        """Whether the queue has a steady state."""
        return self.utilization < 1.0

    def mean_latency_ns(self) -> float:
        """Mean per-packet latency including SERDES."""
        if not self.stable:
            return math.inf
        return md1_latency_ns(self.service_ns, self.utilization, SERDES_FULL_NS)

    def narrowing_cost_ns(self, new_bw_fraction: float) -> float:
        """Extra mean latency from narrowing the link to ``new_bw_fraction``.

        Infinite if the narrowed link would be unstable -- the analytic
        analogue of a delay monitor predicting an unaffordable mode.
        """
        narrowed = LinkLoadModel(self.packets_per_ns, self.flits, new_bw_fraction)
        if not narrowed.stable:
            return math.inf
        return narrowed.mean_latency_ns() - self.mean_latency_ns()
