"""Closed-form power predictions for full-power networks.

Figure 5's full-power breakdown is almost entirely structural: at full
power every connected link burns constant power, leakage is constant,
and only the small dynamic terms depend on traffic.  This module
predicts the breakdown analytically from a topology and a utilization
estimate -- a cross-check for the simulator and a zero-cost design
tool ("what would a 32-cube ternary tree burn?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.network.topology import Topology
from repro.power.hmc_power import DEFAULT_POWER_MODEL, HmcPowerModel

__all__ = [
    "predict_full_power_breakdown",
    "predict_idle_io_fraction",
    "predict_experiment_result",
]


def _connected_endpoints(topology: Topology) -> int:
    """Powered link endpoints: two per unidirectional link, two
    unidirectional links per module (its connectivity pair)."""
    return topology.num_modules * 4


def predict_full_power_breakdown(
    topology: Topology,
    avg_link_utilization: float = 0.0,
    accesses_per_ns: float = 0.0,
    model: HmcPowerModel = DEFAULT_POWER_MODEL,
) -> Dict[str, float]:
    """Predicted per-HMC power (W) by Figure 5 category at full power.

    ``avg_link_utilization`` splits constant I/O power into active and
    idle; ``accesses_per_ns`` sizes the dynamic DRAM/logic terms.
    """
    if not 0 <= avg_link_utilization <= 1:
        raise ValueError("utilization must be in [0, 1]")
    n = topology.num_modules
    endpoint_w = model.link_endpoint_w()
    io_total = _connected_endpoints(topology) * endpoint_w
    active = io_total * avg_link_utilization
    idle = io_total - active

    dram_leak = sum(model.dram_leakage_w(r) for r in topology.radix)
    logic_leak = sum(model.logic_leakage_w(r) for r in topology.radix)

    # Dynamic terms: energy per access / per flit, spread per second.
    e_acc = model.dram_energy_per_access_j()
    dram_dyn = accesses_per_ns * 1e9 * e_acc
    # Each access moves ~6 flits of traffic through ~avg_depth routers.
    e_flit = model.logic_energy_per_flit_j()
    flits_per_access = 6 * topology.avg_depth
    logic_dyn = accesses_per_ns * 1e9 * flits_per_access * e_flit

    return {
        "idle_io": idle / n,
        "active_io": active / n,
        "logic_leak": logic_leak / n,
        "logic_dyn": logic_dyn / n,
        "dram_leak": dram_leak / n,
        "dram_dyn": dram_dyn / n,
    }


def predict_experiment_result(
    config,
    avg_link_utilization: float = 0.0,
    accesses_per_ns: float = 0.0,
    model: HmcPowerModel = DEFAULT_POWER_MODEL,
):
    """Closed-form prediction shaped like an ``ExperimentResult``.

    Builds the config's topology exactly as the simulation harness
    would (workload profile → address mapping → module count) but runs
    **no simulation**: the power breakdown comes from
    :func:`predict_full_power_breakdown` and every traffic-dependent
    metric (throughput, latency, utilization, completion counters) is
    zero. The serve layer's graceful-degradation path uses this to
    answer requests when simulation capacity is unavailable; validation
    code can diff it against a real run.

    The returned object is a genuine
    :class:`~repro.harness.experiment.ExperimentResult`, so it
    serializes through the same code paths as a simulated one — the
    caller is responsible for labeling it approximate.
    """
    # Imported here: analysis must stay importable without pulling the
    # whole harness assembly pipeline in at module-import time.
    from repro.harness.experiment import ExperimentResult
    from repro.network.topology import build_topology
    from repro.power.accounting import PowerBreakdown
    from repro.workloads.mapping import make_mapping
    from repro.workloads.profiles import get_profile

    profile = get_profile(config.workload)
    mapping = make_mapping(config.mapping, profile.footprint_gb, config.scale)
    topology = build_topology(config.topology, mapping.num_modules)
    watts = predict_full_power_breakdown(
        topology, avg_link_utilization, accesses_per_ns, model
    )
    return ExperimentResult(
        config=config,
        num_modules=topology.num_modules,
        breakdown=PowerBreakdown(watts=watts),
        throughput_per_s=0.0,
        avg_read_latency_ns=0.0,
        max_read_latency_ns=0.0,
        channel_utilization=avg_link_utilization,
        link_utilization=avg_link_utilization,
        avg_modules_traversed=topology.avg_depth,
        completed_reads=0,
        completed_writes=0,
    )


def predict_idle_io_fraction(
    topology: Topology,
    avg_link_utilization: float = 0.1,
    accesses_per_ns: float = 0.1,
    model: HmcPowerModel = DEFAULT_POWER_MODEL,
) -> float:
    """Predicted idle-I/O share of total network power (Figure 8)."""
    watts = predict_full_power_breakdown(
        topology, avg_link_utilization, accesses_per_ns, model
    )
    total = sum(watts.values())
    return watts["idle_io"] / total if total else 0.0
