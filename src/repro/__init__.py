"""repro: a reproduction of "Understanding and Optimizing Power
Consumption in Memory Networks" (HPCA 2017).

A trace-free, closed-loop, event-driven simulator of HMC-style memory
networks with the paper's power model, circuit-level I/O power-control
mechanisms (ROO / VWL / DVFS), and both management schemes
(network-unaware, Section V; network-aware ISP, Section VI).

Quickstart::

    from repro import ExperimentConfig, run_experiment

    result = run_experiment(
        ExperimentConfig(
            workload="mixB",
            topology="ternary_tree",
            mechanism="VWL+ROO",
            policy="aware",
            alpha=0.05,
        )
    )
    print(result.breakdown.watts)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.

The names re-exported here (``__all__``) are the package's **stable v1
surface** -- the facade external code should import from: experiment
entry points (:class:`ExperimentConfig`, :func:`run_experiment`,
:class:`SweepRunner`), the result-store layer (:class:`ResultStore`,
:class:`JsonDirStore`, :class:`SqliteStore`, :func:`make_store`), and
the serve client (:class:`ServeClient`, :class:`ServeError`).
Anything importable but not listed in docs/api.md's "Stable v1
surface" section is internal and may change without notice.
"""

import repro.analysis  # noqa: F401  (analytical models subpackage)
from repro.core import (
    LinkModeState,
    MECHANISM_NAMES,
    MechanismConfig,
    NetworkAwarePolicy,
    NetworkUnawarePolicy,
    StaticBaselinePolicy,
    make_mechanism,
)
from repro.harness import (
    ExperimentConfig,
    ExperimentResult,
    RunSettings,
    SimulationBuilder,
    SweepRunner,
    run_experiment,
)
from repro.network import (
    MemoryNetwork,
    Radix,
    TOPOLOGY_NAMES,
    Topology,
    build_topology,
)
from repro.power import DEFAULT_POWER_MODEL, HmcPowerModel, PowerBreakdown
from repro.registry import Registry
from repro.serve.client import ServeClient, ServeError
from repro.sim import Simulator
from repro.store import JsonDirStore, ResultStore, SqliteStore, make_store
from repro.validation import (
    AuditViolationError,
    ValidationReport,
    Violation,
    run_suite,
    validate_config,
)
from repro.workloads import WORKLOAD_NAMES, ClosedLoopWorkload, get_profile

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "Simulator",
    "Topology",
    "TOPOLOGY_NAMES",
    "Radix",
    "build_topology",
    "MemoryNetwork",
    "MechanismConfig",
    "LinkModeState",
    "make_mechanism",
    "MECHANISM_NAMES",
    "NetworkUnawarePolicy",
    "NetworkAwarePolicy",
    "StaticBaselinePolicy",
    "HmcPowerModel",
    "DEFAULT_POWER_MODEL",
    "PowerBreakdown",
    "WORKLOAD_NAMES",
    "get_profile",
    "ClosedLoopWorkload",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "RunSettings",
    "SweepRunner",
    "SimulationBuilder",
    "ResultStore",
    "JsonDirStore",
    "SqliteStore",
    "make_store",
    "ServeClient",
    "ServeError",
    "Registry",
    "Violation",
    "ValidationReport",
    "AuditViolationError",
    "validate_config",
    "run_suite",
]
