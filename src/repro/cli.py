"""Command-line interface: ``repro-mnet``.

Subcommands::

    repro-mnet list                      # workloads / topologies / mechanisms
    repro-mnet run --workload mixB ...   # one experiment, printed summary
    repro-mnet run --trace out.jsonl ... # same, plus a structured event trace
    repro-mnet figure fig5 [--full]      # regenerate a paper artifact
    repro-mnet trace out.jsonl --kind events   # event trace + printed summary
    repro-mnet bench --out BENCH.json    # performance microbenchmarks
    repro-mnet validate --quick          # invariant-validation suite
    repro-mnet serve --port 8642         # long-running experiment service
    repro-mnet store migrate             # JSON cache dir -> SQLite file

The ``figure`` subcommand accepts: fig4, fig5, fig6, fig8, fig9, fig11,
fig12, fig13, fig15, fig16, fig17, fig18, sec7, and hetero-depth (a
beyond-the-paper comparison of depth-staged mechanism mixes built with
``--mech-overrides`` specs).

Simulating subcommands (``run``, ``figure``, ``sweep-alpha``, ``batch``)
share the execution flags: ``--jobs N`` fans cache misses out over a
process pool, ``--cache-dir PATH`` relocates the persistent result
cache (default ``~/.cache/repro-mnet``, or ``$REPRO_CACHE_DIR``),
``--store json|sqlite`` picks the result-store backend (JSON files per
result, or one WAL-mode SQLite file with bulk lookups; see
docs/architecture.md), ``--no-cache`` disables the disk cache for that
invocation, and ``--timeout SECS`` / ``--retries N`` bound each
experiment's wall clock and retry crashed/hung workers (see
docs/resilience.md).

``store`` manages the persistent cache itself: ``store migrate``
converts a JSON cache directory into a SQLite file (verifying entry
counts and spot-checking payload byte-equality), ``store stats``
prints backend/entry/size counters, and ``store compact`` drops
stale-schema entries and quarantined debris.

``sweep-alpha`` and ``batch`` additionally accept ``--journal PATH`` to
checkpoint every outcome as it lands, and ``--resume`` to replay a
previous journal instead of re-simulating completed work.

``serve`` starts the long-running experiment service (HTTP+JSON on
localhost, tiered caching, single-flight dedup, bounded-queue
backpressure, graceful SIGTERM drain); see docs/serving.md.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.mechanisms import MECHANISMS, MECHANISM_NAMES
from repro.harness.executor import FailedResult, make_executor
from repro.harness.experiment import ExperimentConfig, POLICY_NAMES
from repro.harness import figures as F
from repro.harness.journal import SweepJournal
from repro.harness.report import format_table, render_run_summary
from repro.harness.sweep import ExperimentFailedError, SweepRunner
from repro.obs import ALL_CATEGORIES, TRACE_FORMATS
from repro.network.topology import TOPOLOGY_BUILDERS, TOPOLOGY_NAMES
from repro.store import STORE_BACKENDS, make_store
from repro.workloads import WORKLOAD_NAMES, get_profile
from repro.workloads.mapping import MAPPINGS, MAPPING_NAMES

__all__ = ["main"]


def _make_store_from_args(args):
    """The result store selected by ``--store``/``--cache-dir``/``--no-cache``."""
    if getattr(args, "no_cache", False):
        return None
    try:
        return make_store(getattr(args, "store", "json"), args.cache_dir)
    except (NotADirectoryError, IsADirectoryError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")


def _make_runner(args) -> SweepRunner:
    """A SweepRunner honouring the shared execution flags."""
    disk = _make_store_from_args(args)
    executor = make_executor(
        args.jobs,
        timeout_s=getattr(args, "timeout", None),
        retries=getattr(args, "retries", 0),
    )
    runner = SweepRunner(executor=executor, disk_cache=disk)
    if getattr(args, "resume", False) and not getattr(args, "journal", None):
        raise SystemExit("error: --resume requires --journal PATH")
    if getattr(args, "journal", None):
        runner.attach_journal(SweepJournal(args.journal, resume=args.resume))
    return runner


def _print_run_stats(runner: SweepRunner) -> None:
    """One-line cache/instrumentation summary (stderr, machine-greppable)."""
    disk = runner.disk_cache
    disk_part = (
        f", {runner.disk_hits} disk hits" if disk is not None else ", disk cache off"
    )
    if disk is not None and disk.quarantined:
        disk_part += f", {disk.quarantined} quarantined"
    traced_part = f", {runner.traced_runs} traced" if runner.traced_runs else ""
    journal_part = (
        f", {runner.journal_hits} journal replays"
        if runner.journal is not None
        else ""
    )
    failed_part = f", {len(runner.failures)} FAILED" if runner.failures else ""
    print(
        f"# {runner.runs} simulated ({runner.sim_wall_time_s:.1f}s sim time), "
        f"{runner.memory_hits} memory hits{disk_part}{journal_part}"
        f"{traced_part}{failed_part}",
        file=sys.stderr,
    )


def _with_aliases(registry) -> str:
    """Registry names plus ``name (alias: ...)`` annotations."""
    by_canonical: dict = {}
    for alias, canonical in registry.aliases().items():
        by_canonical.setdefault(canonical, []).append(alias)
    parts = []
    for name in registry.names():
        aliases = sorted(by_canonical.get(name, ()))
        parts.append(
            f"{name} (alias: {', '.join(aliases)})" if aliases else name
        )
    return ", ".join(parts)


def _cmd_list(_args) -> int:
    rows = [
        [name, f"{get_profile(name).footprint_gb:g} GB",
         f"{get_profile(name).channel_util:.0%}", get_profile(name).description]
        for name in WORKLOAD_NAMES
    ]
    print(format_table(
        ["workload", "footprint", "target util", "description"], rows,
        title="Workloads",
    ))
    print()
    print("Topologies :", ", ".join(sorted(TOPOLOGY_BUILDERS)),
          f"(paper evaluates: {', '.join(TOPOLOGY_NAMES)})")
    print("Mechanisms :", _with_aliases(MECHANISMS))
    print("Policies   :", ", ".join(POLICY_NAMES))
    print("Mappings   :", _with_aliases(MAPPINGS))
    return 0


def _cmd_run(args) -> int:
    config = ExperimentConfig(
        workload=args.workload,
        topology=args.topology,
        scale=args.scale,
        mechanism=args.mechanism,
        policy=args.policy,
        alpha=args.alpha,
        window_ns=args.window_us * 1000.0,
        epoch_ns=args.epoch_us * 1000.0,
        seed=args.seed,
        wake_ns=args.wake_ns,
        mapping=args.mapping,
        mechanism_overrides=args.mech_overrides,
        fault_spec=args.faults,
        trace_path=args.trace,
        trace_format=args.trace_format,
        trace_categories=args.trace_categories,
        metrics_path=args.metrics_out,
        audit=args.audit,
    )
    runner = _make_runner(args)
    try:
        result = runner.run(config)
    except ExperimentFailedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_run_summary(config, result))

    if args.baseline and config.policy != "none":
        base = runner.run(config.baseline())
        saved = 1 - result.network_power_w / base.network_power_w
        deg = 1 - result.throughput_per_s / base.throughput_per_s
        print()
        print(f"vs full power: {saved:+.1%} network power, {deg:+.2%} throughput cost")
    if args.trace:
        print(f"Wrote {result.trace_events} trace events to {args.trace} "
              f"({config.trace_format})")
    if args.metrics_out:
        print(f"Wrote per-epoch metrics to {args.metrics_out}")
    _print_run_stats(runner)
    return 0


_FIGURES = {
    "fig4": lambda r, s: _print_fig4(),
    "fig5": lambda r, s: _rows(F.fig5_power_breakdown(r, s)),
    "fig6": lambda r, s: _rows(F.fig6_modules_traversed(r, s)),
    "fig8": lambda r, s: _rows(F.fig8_idle_io_fraction(r, s)),
    "fig9": lambda r, s: _rows(F.fig9_utilization(r, s)),
    "fig11": lambda r, s: _rows(F.fig11_unaware_power(r, s)),
    "fig12": lambda r, s: _rows(F.fig12_unaware_performance(r, s)),
    "fig13": lambda r, s: _rows(sorted(F.fig13_link_hours(r, s).items())),
    "fig15": lambda r, s: _rows(F.fig15_aware_vs_unaware(r, s)),
    "fig16": lambda r, s: _rows(F.fig16_per_workload_savings(r, s)),
    "fig17": lambda r, s: _rows(F.fig17_aware_performance(r, s)),
    "fig18": lambda r, s: _rows(F.fig18_dvfs_sensitivity(r, s)),
    "sec7": lambda r, s: _rows(sorted(F.sec7_static_comparison(r, s).items())),
    "hetero-depth": lambda r, s: _rows(F.hetero_depth(r, s)),
}


def _print_fig4() -> None:
    for name, points in F.fig4_workload_cdfs():
        series = " ".join(f"({x:g},{y:.2f})" for x, y in points)
        print(f"{name:6s} {series}")


def _rows(rows) -> None:
    for row in rows:
        if isinstance(row, tuple) and len(row) == 2 and isinstance(row[1], dict):
            print(row[0], {k: round(v, 4) for k, v in row[1].items()})
        else:
            print("  ".join(str(c) for c in (row if isinstance(row, (list, tuple)) else [row])))


def _cmd_figure(args) -> int:
    settings = F.RunSettings.from_env()
    if args.full:
        settings = F.RunSettings(
            workloads=WORKLOAD_NAMES, window_ns=1_000_000.0, epoch_ns=50_000.0
        )
    runner = _make_runner(args)
    fn = _FIGURES.get(args.name)
    if fn is None:
        print(f"unknown figure {args.name!r}; choose from {sorted(_FIGURES)}",
              file=sys.stderr)
        return 2
    # Batch-prefetch the figure's whole grid so --jobs overlaps the
    # simulations; the figure function then reads everything from cache.
    prefetch = F.figure_configs(args.name, settings)
    if prefetch:
        runner.run_all(prefetch)
    fn(runner, settings)
    _print_run_stats(runner)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro-mnet argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-mnet",
        description="Memory-network power simulation (HPCA 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exec_flags = argparse.ArgumentParser(add_help=False)
    exec_group = exec_flags.add_argument_group("execution")
    exec_group.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run simulations over N worker processes (default: 1, serial)")
    exec_group.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persistent result cache location "
             "(default: $REPRO_CACHE_DIR or ~/.cache/repro-mnet)")
    exec_group.add_argument(
        "--store", choices=list(STORE_BACKENDS), default="json",
        help="result-store backend: 'json' (one file per result, the "
             "historical layout) or 'sqlite' (single WAL-mode file with "
             "bulk lookups) (default: json)")
    exec_group.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent result cache for this invocation")
    exec_group.add_argument(
        "--timeout", type=float, default=None, metavar="SECS",
        help="per-experiment wall-clock budget; hung workers are killed "
             "and recorded as structured failures (default: none)")
    exec_group.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-attempts for crashed/timed-out experiments "
             "(deterministic simulation errors are never retried; default: 0)")

    journal_flags = argparse.ArgumentParser(add_help=False)
    journal_group = journal_flags.add_argument_group("checkpointing")
    journal_group.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append every experiment outcome to a JSONL checkpoint "
             "journal as it completes (see docs/resilience.md)")
    journal_group.add_argument(
        "--resume", action="store_true",
        help="replay --journal before running: completed results are "
             "reused, failed/missing configs are (re-)run")

    sub.add_parser("list", help="list workloads, topologies, mechanisms")

    run_p = sub.add_parser("run", help="run one experiment", parents=[exec_flags])
    run_p.add_argument("--workload", default="mixB", choices=WORKLOAD_NAMES)
    run_p.add_argument("--topology", default="daisychain",
                       choices=sorted(TOPOLOGY_BUILDERS))
    run_p.add_argument("--scale", default="small", choices=["small", "big"])
    run_p.add_argument("--mechanism", default="FP", choices=MECHANISM_NAMES)
    run_p.add_argument("--policy", default="none", choices=POLICY_NAMES)
    run_p.add_argument("--alpha", type=float, default=0.05)
    run_p.add_argument("--window-us", type=float, default=500.0)
    run_p.add_argument("--epoch-us", type=float, default=25.0)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--wake-ns", type=float, default=14.0)
    run_p.add_argument("--mapping", default="contiguous",
                       choices=list(MAPPING_NAMES))
    run_p.add_argument(
        "--mech-overrides", default="", metavar="SPEC",
        help="per-link mechanism overrides, e.g. "
             "'depth>=3:ROO+VWL,link:m2-up:FP' (later clauses win; "
             "see docs/reproducing.md for the grammar)")
    run_p.add_argument("--baseline", action="store_true",
                       help="also run the full-power baseline and compare")
    run_p.add_argument(
        "--faults", default="", metavar="SPEC",
        help="fault-injection spec, e.g. "
             "'seed=7,crc=0.01,crc_bursts=4,down=2' "
             "(see docs/resilience.md for the key reference)")
    obs_group = run_p.add_argument_group("observability")
    obs_group.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a structured event trace (see docs/observability.md)")
    obs_group.add_argument(
        "--trace-format", default="jsonl", choices=list(TRACE_FORMATS),
        help="trace file format (default: jsonl)")
    obs_group.add_argument(
        "--trace-categories", default="", metavar="CATS",
        help="comma list of categories, or 'all' "
             f"(default: link,epoch; known: {','.join(ALL_CATEGORIES)})")
    obs_group.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write per-epoch aggregated metrics as JSON")
    obs_group.add_argument(
        "--audit", nargs="?", const="strict", default="",
        choices=["warn", "strict"], metavar="MODE",
        help="run invariant checks during and after the simulation: "
             "'strict' (default when the flag is given) fails the run "
             "on any violation, 'warn' reports to stderr and continues "
             "(see docs/validation.md)")

    fig_p = sub.add_parser("figure", help="regenerate a paper artifact",
                           parents=[exec_flags])
    fig_p.add_argument("name", choices=sorted(_FIGURES))
    fig_p.add_argument("--full", action="store_true",
                       help="all 14 workloads, 1 ms windows (slow)")

    sweep_p = sub.add_parser("sweep-alpha",
                             help="trade-off curve over alpha values",
                             parents=[exec_flags, journal_flags])
    sweep_p.add_argument("--workload", default="mg.D", choices=WORKLOAD_NAMES)
    sweep_p.add_argument("--topology", default="star",
                         choices=sorted(TOPOLOGY_BUILDERS))
    sweep_p.add_argument("--scale", default="big", choices=["small", "big"])
    sweep_p.add_argument("--mechanism", default="VWL", choices=MECHANISM_NAMES)
    sweep_p.add_argument(
        "--mech-overrides", default="", metavar="SPEC",
        help="per-link mechanism overrides applied to every point of "
             "the sweep (same grammar as 'run --mech-overrides')")
    sweep_p.add_argument("--policy", default="aware",
                         choices=["unaware", "aware"])
    sweep_p.add_argument("--alphas", type=float, nargs="+",
                         default=[0.025, 0.05, 0.10, 0.20, 0.30])
    sweep_p.add_argument("--window-us", type=float, default=300.0)
    sweep_p.add_argument("--epoch-us", type=float, default=20.0)

    batch_p = sub.add_parser("batch", help="run a JSON batch spec",
                             parents=[exec_flags, journal_flags])
    batch_p.add_argument("spec", help="batch spec file (see harness.io.load_batch)")
    batch_p.add_argument("--out-json", help="write results as JSON")
    batch_p.add_argument("--out-csv", help="write results as CSV")

    bench_p = sub.add_parser(
        "bench", help="run performance microbenchmarks (see docs/benchmarking.md)")
    bench_p.add_argument("--quick", action="store_true",
                         help="smaller iteration counts (CI-friendly)")
    bench_p.add_argument("--out", default=None, metavar="FILE",
                         help="write a schema-versioned BENCH_*.json report")
    bench_p.add_argument("--baseline", default=None, metavar="FILE",
                         help="compare against a committed BENCH report")
    bench_p.add_argument("--max-regress", type=float, default=25.0, metavar="PCT",
                         help="fail when any bench slows by more than PCT%% "
                              "vs the baseline (default: 25)")
    bench_p.add_argument("--repeats", type=int, default=None, metavar="N",
                         help="override per-bench repeat counts")
    bench_p.add_argument("--only", nargs="+", default=None, metavar="NAME",
                         help="run only the named benchmarks")
    bench_p.add_argument("--list", action="store_true",
                         help="list benchmark scenarios and exit")

    serve_p = sub.add_parser(
        "serve",
        help="run the long-running experiment service (see docs/serving.md)",
        parents=[exec_flags, journal_flags])
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8642,
                         help="TCP port; 0 picks an ephemeral port and "
                              "prints it (default: 8642)")
    serve_p.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="max outstanding simulations (queued + in flight); further "
             "cache-missing requests get HTTP 429 (default: 64)")
    serve_p.add_argument(
        "--memory-entries", type=int, default=512, metavar="N",
        help="in-memory LRU result-cache capacity; 0 disables the "
             "memory tier (default: 512)")
    serve_p.add_argument(
        "--batch-window-ms", type=float, default=10.0, metavar="MS",
        help="linger before dispatching queued misses, so concurrent "
             "requests coalesce into one executor batch (default: 10)")
    serve_p.add_argument(
        "--batch-max", type=int, default=16, metavar="N",
        help="max configs per coalesced executor batch (default: 16)")
    serve_p.add_argument(
        "--request-timeout", type=float, default=600.0, metavar="SECS",
        help="per-request wait budget before the server answers 504 "
             "(default: 600)")
    serve_p.add_argument(
        "--drain-timeout", type=float, default=None, metavar="SECS",
        help="max seconds a SIGTERM drain waits for in-flight work "
             "(default: wait forever)")
    serve_p.add_argument(
        "--socket-timeout", type=float, default=None, metavar="SECS",
        help="per-connection idle socket read timeout for keep-alive "
             "connections; independent of the request timeout "
             "(default: 30)")
    serve_p.add_argument(
        "--degrade", choices=["off", "analytical"], default="off",
        help="what a saturated queue or open circuit breaker answers "
             "with: 'off' = hard 429/503, 'analytical' = HTTP 200 from "
             "the closed-form power model, marked approximate "
             "(default: off)")
    serve_p.add_argument(
        "--breaker-threshold", type=int, default=5, metavar="N",
        help="consecutive simulation failures that trip a config "
             "family's circuit breaker; 0 disables breakers "
             "(default: 5)")
    serve_p.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECS",
        help="seconds an open breaker waits before admitting a "
             "half-open probe (default: 30)")
    serve_p.add_argument(
        "--heartbeat-s", type=float, default=1.0, metavar="SECS",
        help="supervisor heartbeat interval for dispatcher/executor "
             "health checks; 0 disables supervision (default: 1)")
    serve_p.add_argument(
        "--verbose", action="store_true",
        help="log one line per HTTP request to stderr")

    store_p = sub.add_parser(
        "store",
        help="inspect, compact, or migrate the persistent result store")
    store_p.add_argument(
        "action", choices=["migrate", "stats", "compact"],
        help="migrate: convert a JSON cache dir to a SQLite file "
             "(verifies counts + payload equality); stats: print "
             "backend, entry, and counter info; compact: drop "
             "stale-schema entries and quarantined debris")
    store_p.add_argument(
        "--store", choices=list(STORE_BACKENDS), default="json",
        help="backend for stats/compact (default: json; migrate always "
             "reads JSON and writes SQLite)")
    store_p.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="cache location to operate on "
             "(default: $REPRO_CACHE_DIR or ~/.cache/repro-mnet)")
    store_p.add_argument(
        "--to", default=None, metavar="FILE",
        help="migrate: destination SQLite file "
             "(default: <cache-dir>/results.sqlite)")
    store_p.add_argument(
        "--sample", type=int, default=8, metavar="N",
        help="migrate: migrated payloads to read back and compare "
             "byte-for-byte against the source (default: 8)")

    val_p = sub.add_parser(
        "validate",
        help="run the invariant-validation suite (see docs/validation.md)")
    val_p.add_argument(
        "--quick", action="store_true",
        help="CI-sized matrix: all four topologies, unmanaged + managed, "
             "short windows, no metamorphic relations")
    val_p.add_argument(
        "--metamorphic", action="store_true",
        help="force the metamorphic relations on (they default to "
             "running only without --quick)")
    val_p.add_argument(
        "--sabotage", default=None, metavar="KIND",
        help="self-test: corrupt one counter after each run and expect "
             "the checkers to fire (KIND from --list-checks output)")
    val_p.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the structured violation report as JSON")
    val_p.add_argument(
        "--markdown", default=None, metavar="FILE",
        help="write the violation report as a markdown table")
    val_p.add_argument(
        "--list-checks", action="store_true",
        help="list registered invariant checkers, metamorphic relations, "
             "and sabotage kinds, then exit")

    trace_p = sub.add_parser(
        "trace", help="record a workload access trace or a structured event trace")
    trace_p.add_argument("path", help="output file (.gz for access-trace compression)")
    trace_p.add_argument(
        "--kind", default="accesses", choices=["accesses", "events"],
        help="'accesses': per-access workload trace (full-power network); "
             "'events': structured simulation events "
             "(see docs/observability.md)")
    trace_p.add_argument("--workload", default="mixB", choices=WORKLOAD_NAMES)
    trace_p.add_argument("--topology", default="daisychain",
                         choices=sorted(TOPOLOGY_BUILDERS))
    trace_p.add_argument("--scale", default="small", choices=["small", "big"])
    trace_p.add_argument("--window-us", type=float, default=200.0)
    trace_p.add_argument("--seed", type=int, default=1)
    ev_group = trace_p.add_argument_group("event traces (--kind events)")
    ev_group.add_argument("--mechanism", default="VWL+ROO", choices=MECHANISM_NAMES)
    ev_group.add_argument("--policy", default="aware", choices=POLICY_NAMES)
    ev_group.add_argument("--alpha", type=float, default=0.05)
    ev_group.add_argument("--epoch-us", type=float, default=25.0)
    ev_group.add_argument("--format", default="jsonl", choices=list(TRACE_FORMATS))
    ev_group.add_argument(
        "--categories", default="", metavar="CATS",
        help="comma list of trace categories, or 'all' (default: link,epoch)")

    return parser


def _cmd_sweep_alpha(args) -> int:
    from repro.harness.charts import line_chart
    from repro.harness.pareto import pareto_frontier, sweep_alpha

    runner = _make_runner(args)
    config = ExperimentConfig(
        workload=args.workload,
        topology=args.topology,
        scale=args.scale,
        mechanism=args.mechanism,
        mechanism_overrides=args.mech_overrides,
        policy=args.policy,
        window_ns=args.window_us * 1000.0,
        epoch_ns=args.epoch_us * 1000.0,
    )
    runner.run_all(
        [config.replace(alpha=a) for a in args.alphas] + [config.baseline()]
    )
    try:
        points = sweep_alpha(runner, config, alphas=args.alphas)
    except ExperimentFailedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        _print_run_stats(runner)
        _close_journal(runner)
        return 3
    rows = [
        [f"{p.alpha:.1%}", f"{p.power_saved:.1%}", f"{p.degradation:.2%}"]
        for p in points
    ]
    print(format_table(
        ["alpha", "power saved", "throughput cost"], rows,
        title=f"{args.workload} / {args.scale} {args.topology} / "
              f"{args.mechanism} ({args.policy})",
    ))
    print()
    print(line_chart(
        [("sweep", [(p.degradation * 100, p.power_saved * 100) for p in points])],
        width=50, height=12,
        title="power saved (%) vs throughput cost (%)",
    ))
    frontier = pareto_frontier(points)
    print(f"\nPareto-optimal points: {len(frontier)}/{len(points)}")
    _print_run_stats(runner)
    _close_journal(runner)
    return 0


def _close_journal(runner: SweepRunner) -> None:
    if runner.journal is not None:
        runner.journal.close()


def _cmd_trace(args) -> int:
    if args.kind == "events":
        return _cmd_trace_events(args)
    from repro.harness.builder import SimulationBuilder
    from repro.workloads.traces import TraceRecorder, save_trace

    config = ExperimentConfig(
        workload=args.workload,
        topology=args.topology,
        scale=args.scale,
        mechanism="FP",
        policy="none",
        window_ns=args.window_us * 1000.0,
        seed=args.seed,
    )
    simulation = SimulationBuilder(config).without_observability().build()
    network = simulation.network
    recorder = TraceRecorder(network)
    simulation.run()
    count = save_trace(args.path, recorder.records)
    print(f"Wrote {count} accesses ({network.injected_reads} reads, "
          f"{network.injected_writes} writes) to {args.path}")
    return 0


def _cmd_trace_events(args) -> int:
    from repro.harness.experiment import run_experiment
    from repro.obs import format_trace_summary, read_jsonl

    config = ExperimentConfig(
        workload=args.workload,
        topology=args.topology,
        scale=args.scale,
        mechanism=args.mechanism,
        policy=args.policy,
        alpha=args.alpha,
        window_ns=args.window_us * 1000.0,
        epoch_ns=args.epoch_us * 1000.0,
        seed=args.seed,
        trace_path=args.path,
        trace_format=args.format,
        trace_categories=args.categories,
    )
    result = run_experiment(config)
    print(f"Wrote {result.trace_events} events to {args.path} ({args.format})")
    if args.format == "jsonl":
        print()
        print(format_trace_summary(read_jsonl(args.path)))
    return 0


def _cmd_bench(args) -> int:
    import os

    from repro.perf import (
        BenchmarkError,
        ReportError,
        all_benchmarks,
        compare_outcome,
        compare_reports,
        format_comparison,
        load_report,
        make_report,
        run_benchmarks,
        write_report,
    )

    if args.list:
        width = max(len(s.name) for s in all_benchmarks())
        for spec in all_benchmarks():
            print(f"{spec.name:<{width}}  {spec.description}")
        return 0

    mode = "quick" if args.quick else "full"
    try:
        results = run_benchmarks(
            names=args.only or None,
            quick=args.quick,
            repeats=args.repeats,
            progress=lambda n: print(f"# bench [{mode}] {n} ...", file=sys.stderr),
        )
    except BenchmarkError as exc:
        raise SystemExit(f"error: {exc}")

    rows = [
        [r.name, f"{r.best_s * 1e3:.2f} ms", f"{r.mean_s * 1e3:.2f} ms",
         f"{r.stdev_s * 1e3:.2f} ms", f"{r.events_per_s:.3e}", r.fingerprint]
        for r in results
    ]
    print(format_table(
        ["bench", "best", "mean", "stdev", "events/s", "fingerprint"], rows,
        title=f"repro-mnet bench ({mode}, best of N)",
    ))

    report = make_report(results, args.quick)
    if args.out:
        write_report(args.out, report)
        print(f"Wrote {args.out}")

    if args.baseline:
        if not os.path.exists(args.baseline):
            print(f"error: baseline file {args.baseline!r} not found",
                  file=sys.stderr)
            return 2
        try:
            baseline = load_report(args.baseline)
        except (ReportError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        comparisons = compare_reports(report, baseline, args.max_regress)
        print()
        print(format_comparison(comparisons, args.max_regress))
        if compare_outcome(comparisons):
            print("FAIL: performance regression beyond threshold",
                  file=sys.stderr)
            return 1
        print("gate passed")
    return 0


def _cmd_validate(args) -> int:
    from repro.validation import CHECKS, METAMORPHIC_RELATIONS, SABOTAGES, run_suite

    if args.list_checks:
        rows = [
            [name, fn.scope, "" if fn.tolerance is None else f"{fn.tolerance:g}",
             fn.description]
            for name, fn in CHECKS.items()
        ]
        rows += [[name, "suite", "", desc] for name, desc, _ in METAMORPHIC_RELATIONS]
        print(format_table(
            ["check", "scope", "tolerance", "description"], rows,
            title="Invariant checkers (see docs/validation.md)",
        ))
        print()
        print("Sabotage kinds:",
              ", ".join(f"{k} ({desc})" for k, (desc, _) in sorted(SABOTAGES.items())))
        return 0

    if args.sabotage is not None and args.sabotage not in SABOTAGES:
        print(f"unknown sabotage {args.sabotage!r}; choose from "
              f"{sorted(SABOTAGES)}", file=sys.stderr)
        return 2

    report = run_suite(
        quick=args.quick,
        sabotage=args.sabotage,
        metamorphic=True if args.metamorphic else None,
        progress=lambda msg: print(f"# {msg}", file=sys.stderr),
    )
    if args.json:
        report.write_json(args.json)
        print(f"Wrote {args.json}")
    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write(report.to_markdown())
        print(f"Wrote {args.markdown}")
    for violation in report.violations:
        print(f"  {violation.describe()}")
    print(report.summary())
    return 0 if report.passed else 1


def _cmd_serve(args) -> int:
    from repro.serve import ExperimentService, ServiceSettings, run_server

    disk = _make_store_from_args(args)
    executor = make_executor(args.jobs, timeout_s=args.timeout,
                             retries=args.retries)
    if args.resume and not args.journal:
        raise SystemExit("error: --resume requires --journal PATH")
    journal = (
        SweepJournal(args.journal, resume=args.resume) if args.journal else None
    )
    try:
        settings = ServiceSettings(
            queue_limit=args.queue_limit,
            memory_entries=args.memory_entries,
            batch_window_s=args.batch_window_ms / 1000.0,
            batch_max=args.batch_max,
            request_timeout_s=args.request_timeout,
            socket_timeout_s=args.socket_timeout,
            degrade=args.degrade,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_s=args.breaker_cooldown,
            heartbeat_s=args.heartbeat_s,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    service = ExperimentService(
        executor=executor, disk_cache=disk, settings=settings, journal=journal
    )
    if journal is not None and args.resume:
        warmed = service.warm_start(journal)
        print(f"# warm start: {warmed} results from {args.journal}",
              file=sys.stderr)
    return run_server(
        service,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        drain_timeout_s=args.drain_timeout,
    )


def _cmd_store(args) -> int:
    from repro.store import (
        DEFAULT_SQLITE_FILENAME,
        JsonDirStore,
        SqliteStore,
        migrate_json_to_sqlite,
    )

    if args.action == "migrate":
        try:
            source = JsonDirStore(args.cache_dir)
            dest_path = (
                args.to
                if args.to
                else source.root / DEFAULT_SQLITE_FILENAME
            )
            dest = SqliteStore(dest_path)
        except (NotADirectoryError, IsADirectoryError) as exc:
            raise SystemExit(f"error: {exc}")
        print(f"migrating {source.directory} -> {dest.path}")
        report = migrate_json_to_sqlite(source, dest, sample=args.sample)
        for line in report.summary_lines():
            print(f"  {line}")
        if not report.ok:
            print("error: migration verification failed", file=sys.stderr)
            return 1
        return 0
    store = _make_store_from_args(args)
    summary = store.stats() if args.action == "stats" else store.compact()
    width = max(len(key) for key in summary)
    for key, value in summary.items():
        print(f"{key:<{width}}  {value}")
    return 0


def _cmd_batch(args) -> int:
    from repro.harness.io import load_batch, save_results_csv, save_results_json

    configs = load_batch(args.spec)
    print(f"Running {len(configs)} experiments from {args.spec} ...")
    runner = _make_runner(args)
    outcomes = runner.run_all(configs)
    failed = 0
    for i, (config, outcome) in enumerate(zip(configs, outcomes), 1):
        label = (f"{config.workload}/{config.topology}/"
                 f"{config.mechanism}/{config.policy}")
        if isinstance(outcome, FailedResult):
            failed += 1
            print(f"  [{i}/{len(configs)}] {label}: "
                  f"FAILED [{outcome.error_type}] {outcome.message}")
        else:
            print(f"  [{i}/{len(configs)}] {label}: "
                  f"{outcome.power_per_hmc_w:.2f} W/HMC")
    _print_run_stats(runner)
    results = [o for o in outcomes if not isinstance(o, FailedResult)]
    if args.out_json:
        save_results_json(args.out_json, results)
        print(f"Wrote {args.out_json}")
    if args.out_csv:
        save_results_csv(args.out_csv, results)
        print(f"Wrote {args.out_csv}")
    _close_journal(runner)
    if failed:
        print(f"{failed}/{len(configs)} experiments failed "
              f"(re-run with --journal/--resume to retry just those)",
              file=sys.stderr)
        return 3
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "sweep-alpha":
        return _cmd_sweep_alpha(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "store":
        return _cmd_store(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
