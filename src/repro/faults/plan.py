"""Seed-deterministic fault plans: what goes wrong, where, and when.

A fault plan is a *schedule* of perturbation windows generated up front
from a compact textual spec (:func:`parse_fault_spec`), so the same
``(spec, topology, window)`` always yields the same faults regardless of
execution order, worker process, or Python hash randomization.  Four
fault kinds model the transient misbehaviour real HMC links and vaults
exhibit (Section II of the paper describes the link architecture; the
HMC specification's CRC-based link retry motivates the error model):

``crc``
    A burst window during which each packet transmission on one link
    fails CRC with a given probability and must be retransmitted by the
    link-retry model in :mod:`repro.network.links`.
``down``
    A window during which one link cannot start transmissions at all
    (training/retraining outage); queued packets wait it out.
``degrade``
    A window during which one link's lanes run degraded: every flit
    takes ``magnitude`` times longer to serialize.
``vault_stall``
    A window during which every DRAM access to one module is delayed by
    ``magnitude`` ns (refresh storms, thermal throttling).

The spec grammar is a comma- or semicolon-separated list of
``key=value`` pairs, e.g.::

    seed=7,crc=0.02,crc_bursts=3,burst_ns=5000,down=1,down_ns=2000

Unknown keys and malformed values raise :class:`FaultSpecError` so a
bad spec fails at :class:`~repro.harness.experiment.ExperimentConfig`
construction, not mid-sweep.

Three additional *sabotage* directives exist purely to test the
hardened execution harness (``docs/resilience.md``): ``crash=1`` raises
inside the worker, ``die=1`` SIGKILLs the worker process, and
``hang=SECS`` sleeps for a finite number of wall-clock seconds.  They
never appear in paper-facing experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from random import Random
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "FaultSpecError",
    "FaultSpec",
    "FaultEvent",
    "FaultPlan",
    "parse_fault_spec",
    "build_plan",
    "execute_sabotage",
]


class FaultSpecError(ValueError):
    """A fault spec string could not be parsed."""


@dataclass(frozen=True)
class FaultSpec:
    """Parsed fault parameters (all windows are drawn from ``seed``)."""

    #: RNG seed for placing fault windows (independent of workload seed).
    seed: int = 1
    #: Per-packet CRC-error probability inside a burst window.
    crc: float = 0.0
    #: Number of CRC burst windows across the run.
    crc_bursts: int = 0
    #: Duration of each CRC burst window (ns).
    burst_ns: float = 4_000.0
    #: Number of transient link-down windows.
    down: int = 0
    #: Duration of each link-down window (ns).
    down_ns: float = 2_000.0
    #: Number of degraded-lane windows.
    degrade: int = 0
    #: Flit-time multiplier while degraded (>= 1).
    degrade_factor: float = 2.0
    #: Duration of each degraded-lane window (ns).
    degrade_ns: float = 8_000.0
    #: Number of vault-stall windows.
    stall: int = 0
    #: Extra latency added to each DRAM access in a stall window (ns).
    stall_ns: float = 200.0
    #: Duration of each vault-stall window (ns).
    stall_win_ns: float = 4_000.0
    #: Retry turnaround: CRC detection + retry request + pointer rollback
    #: before the retransmission starts (ns).
    retry_ns: float = 48.0
    #: Sabotage (harness chaos testing only): raise in the worker.
    crash: bool = False
    #: Sabotage: SIGKILL the worker process.
    die: bool = False
    #: Sabotage: sleep this many wall-clock seconds in the worker.
    hang: float = 0.0

    @property
    def wants_link_faults(self) -> bool:
        """Whether any link-level fault windows would be generated."""
        return (
            (self.crc_bursts > 0 and self.crc > 0.0)
            or self.down > 0
            or self.degrade > 0
        )

    @property
    def is_noop(self) -> bool:
        """No fault windows and no sabotage: simulation-equivalent to ''."""
        return not (
            self.wants_link_faults
            or self.stall > 0
            or self.crash
            or self.die
            or self.hang > 0
        )


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault window.

    ``kind`` is ``"crc"`` / ``"down"`` / ``"degrade"`` (``target`` is a
    link name) or ``"vault_stall"`` (``target`` is a module index as a
    string).  ``magnitude`` is the CRC error rate, the degrade factor,
    or the per-access stall in ns; unused (0.0) for ``down``.
    """

    kind: str
    target: str
    start_ns: float
    end_ns: float
    magnitude: float = 0.0


_INT_KEYS = ("seed", "crc_bursts", "down", "degrade", "stall")
_FLOAT_KEYS = (
    "crc",
    "burst_ns",
    "down_ns",
    "degrade_factor",
    "degrade_ns",
    "stall_ns",
    "stall_win_ns",
    "retry_ns",
    "hang",
)
_BOOL_KEYS = ("crash", "die")


def parse_fault_spec(spec: str) -> FaultSpec:
    """Parse ``key=value[,key=value...]`` into a :class:`FaultSpec`.

    Both ``,`` and ``;`` separate pairs; whitespace around keys and
    values is ignored.  An empty/whitespace spec yields the all-zero
    (no-op) spec.  Raises :class:`FaultSpecError` on unknown keys,
    malformed pairs, or out-of-range values.
    """
    values: Dict[str, object] = {}
    for raw in spec.replace(";", ",").split(","):
        pair = raw.strip()
        if not pair:
            continue
        key, sep, val = pair.partition("=")
        key = key.strip()
        val = val.strip()
        if not sep or not key or not val:
            raise FaultSpecError(
                f"malformed fault spec entry {pair!r} (expected key=value)"
            )
        try:
            if key in _INT_KEYS:
                values[key] = int(val)
            elif key in _FLOAT_KEYS:
                values[key] = float(val)
            elif key in _BOOL_KEYS:
                values[key] = val not in ("0", "false", "no")
            else:
                known = ", ".join(f.name for f in fields(FaultSpec))
                raise FaultSpecError(
                    f"unknown fault spec key {key!r} (known: {known})"
                )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, FaultSpecError):
                raise
            raise FaultSpecError(
                f"bad value for fault spec key {key!r}: {val!r}"
            ) from exc
    out = FaultSpec(**values)  # type: ignore[arg-type]
    if not 0.0 <= out.crc <= 1.0:
        raise FaultSpecError(f"crc rate must be in [0, 1], got {out.crc}")
    if out.degrade_factor < 1.0:
        raise FaultSpecError(
            f"degrade_factor must be >= 1, got {out.degrade_factor}"
        )
    for name in ("crc_bursts", "down", "degrade", "stall"):
        if getattr(out, name) < 0:
            raise FaultSpecError(f"{name} must be >= 0")
    for name in ("burst_ns", "down_ns", "degrade_ns", "stall_ns",
                 "stall_win_ns", "retry_ns", "hang"):
        if getattr(out, name) < 0:
            raise FaultSpecError(f"{name} must be >= 0")
    return out


@dataclass(frozen=True)
class FaultPlan:
    """A fully materialized fault schedule for one experiment."""

    spec: FaultSpec
    events: Tuple[FaultEvent, ...]

    def events_for_link(self, name: str) -> List[FaultEvent]:
        """Link-level fault windows targeting link ``name``."""
        return [
            e for e in self.events
            if e.target == name and e.kind in ("crc", "down", "degrade")
        ]

    def vault_windows(self) -> Dict[int, List[Tuple[float, float, float]]]:
        """Module index -> list of ``(start, end, stall_ns)`` windows."""
        out: Dict[int, List[Tuple[float, float, float]]] = {}
        for e in self.events:
            if e.kind == "vault_stall":
                out.setdefault(int(e.target), []).append(
                    (e.start_ns, e.end_ns, e.magnitude)
                )
        return out

    def summary(self) -> Dict[str, int]:
        """Event counts by kind (for traces and reports)."""
        counts: Dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return counts


def _window_start(rng: Random, window_ns: float, dur_ns: float) -> float:
    """A uniformly placed window start, clamped to fit when possible."""
    return rng.uniform(0.0, max(0.0, window_ns - dur_ns))


def build_plan(
    spec: FaultSpec, link_names: Sequence[str], num_modules: int,
    window_ns: float,
) -> FaultPlan:
    """Materialize ``spec`` into a deterministic schedule.

    Windows are drawn from ``random.Random(spec.seed)`` in a fixed
    order (crc, down, degrade, vault_stall), targeting links by their
    position in ``link_names`` (the network's deterministic
    construction order) -- never by hash, so plans are bit-identical
    across processes and executors.
    """
    rng = Random(spec.seed)
    names = list(link_names)
    events: List[FaultEvent] = []
    if names and spec.crc > 0.0:
        for _ in range(spec.crc_bursts):
            start = _window_start(rng, window_ns, spec.burst_ns)
            events.append(FaultEvent(
                "crc", names[rng.randrange(len(names))],
                start, start + spec.burst_ns, spec.crc,
            ))
    if names:
        for _ in range(spec.down):
            start = _window_start(rng, window_ns, spec.down_ns)
            events.append(FaultEvent(
                "down", names[rng.randrange(len(names))],
                start, start + spec.down_ns,
            ))
        for _ in range(spec.degrade):
            start = _window_start(rng, window_ns, spec.degrade_ns)
            events.append(FaultEvent(
                "degrade", names[rng.randrange(len(names))],
                start, start + spec.degrade_ns, spec.degrade_factor,
            ))
    if num_modules > 0:
        for _ in range(spec.stall):
            start = _window_start(rng, window_ns, spec.stall_win_ns)
            events.append(FaultEvent(
                "vault_stall", str(rng.randrange(num_modules)),
                start, start + spec.stall_win_ns, spec.stall_ns,
            ))
    return FaultPlan(spec=spec, events=tuple(events))


def execute_sabotage(spec: FaultSpec) -> None:
    """Run the chaos-testing directives (worker side, before simulating).

    ``crash`` raises, ``die`` SIGKILLs the current process (simulating a
    segfaulting/OOM-killed worker), ``hang`` sleeps for a *finite*
    number of seconds (simulating a wedged worker a watchdog must
    reclaim).  Order: hang, then die, then crash, so a spec combining
    them exercises the watchdog first.
    """
    if spec.hang > 0:
        import time

        time.sleep(spec.hang)
    if spec.die:
        import os
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    if spec.crash:
        raise RuntimeError(
            "fault spec sabotage: deliberate worker crash (crash=1)"
        )
