"""Deterministic fault injection (see ``docs/resilience.md``).

Public surface:

* :func:`parse_fault_spec` / :class:`FaultSpec` -- the compact textual
  grammar carried by ``ExperimentConfig.fault_spec``;
* :func:`build_plan` / :class:`FaultPlan` / :class:`FaultEvent` -- the
  seed-deterministic schedule of fault windows;
* :class:`FaultInjector` -- attaches a plan to a built network;
* :func:`execute_sabotage` -- chaos-testing directives for the hardened
  execution harness (crash / die / hang).
"""

from repro.faults.inject import FaultInjector, VaultFaultTable
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    build_plan,
    execute_sabotage,
    parse_fault_spec,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultSpecError",
    "VaultFaultTable",
    "build_plan",
    "execute_sabotage",
    "parse_fault_spec",
]
