"""Installing a :class:`~repro.faults.plan.FaultPlan` into a network.

The injector is the only piece that knows both sides: the plan (what
should go wrong) and the simulation objects (where the hooks live).
Link-level windows become :class:`~repro.network.links.LinkFaultState`
objects attached to the targeted controllers' ``faults`` slot; vault
stall windows become a :class:`VaultFaultTable` attached to
``network.vault_faults``.  Untargeted links keep ``faults is None`` so
the fault-free hot path pays a single attribute test, exactly like the
tracing layer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.network.links import LinkFaultState

__all__ = ["FaultInjector", "VaultFaultTable"]


class VaultFaultTable:
    """Per-module vault-stall windows plus their hit counters."""

    __slots__ = ("windows", "stalls", "stall_time_ns", "trace")

    def __init__(
        self, windows: Dict[int, List[Tuple[float, float, float]]]
    ) -> None:
        #: module index -> sorted ``(start, end, stall_ns)`` windows.
        self.windows = {m: sorted(w) for m, w in windows.items()}
        self.stalls = 0
        self.stall_time_ns = 0.0
        #: Optional tracer (``fault`` category).
        self.trace: Optional[Any] = None

    def stall_ns(self, module: int, now: float) -> float:
        """Extra latency for an access to ``module`` at ``now`` (0 if none)."""
        wins = self.windows.get(module)
        if not wins:
            return 0.0
        for start, end, stall in wins:
            if start <= now < end:
                self.stalls += 1
                self.stall_time_ns += stall
                if self.trace is not None:
                    self.trace.emit(
                        now, "fault", "fault.vault_stall",
                        module=module, stall_ns=stall,
                    )
                return stall
        return 0.0


class FaultInjector:
    """Wires a plan's windows into link controllers and the network."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: Installed per-link fault states (for result aggregation).
        self.link_states: List[LinkFaultState] = []
        self.vault_table: Optional[VaultFaultTable] = None

    def install(self, network) -> "FaultInjector":
        """Attach fault state to ``network``; returns self for chaining.

        Links are addressed by construction order so the per-link CRC
        draw seed -- ``spec.seed`` mixed with the link index -- is
        identical in every process that builds the same topology.
        """
        spec = self.plan.spec
        for index, link in enumerate(network.all_links()):
            events = self.plan.events_for_link(link.name)
            if not events:
                continue
            state = LinkFaultState(
                seed=spec.seed * 1_000_003 + index,
                crc=[(e.start_ns, e.end_ns, e.magnitude)
                     for e in events if e.kind == "crc"],
                down=[(e.start_ns, e.end_ns)
                      for e in events if e.kind == "down"],
                degrade=[(e.start_ns, e.end_ns, e.magnitude)
                         for e in events if e.kind == "degrade"],
                retry_ns=spec.retry_ns,
            )
            link.faults = state
            self.link_states.append(state)
        vault_windows = self.plan.vault_windows()
        if vault_windows:
            self.vault_table = VaultFaultTable(vault_windows)
            network.vault_faults = self.vault_table
        return self
