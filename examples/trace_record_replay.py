#!/usr/bin/env python
"""Record a trace from a closed-loop run, then replay it under
different link power mechanisms.

Open-loop replay holds the arrival process fixed, so differences in
power and latency between mechanisms are attributable to the links
alone -- the cleanest apples-to-apples mechanism comparison, and the
reason trace-driven methodology is standard for power studies.

Usage::

    python examples/trace_record_replay.py [workload]
"""

import sys
import tempfile

from repro import (
    MemoryNetwork,
    NetworkUnawarePolicy,
    Simulator,
    build_topology,
    make_mechanism,
)
from repro.harness import LatencyTracker, format_table
from repro.power import PowerBreakdown
from repro.workloads import (
    ClosedLoopWorkload,
    TraceRecorder,
    TraceReplayWorkload,
    contiguous_mapping,
    get_profile,
    load_trace,
    save_trace,
)

WINDOW_NS = 200_000.0


def build(profile, mechanism):
    sim = Simulator()
    mapping = contiguous_mapping(profile.footprint_gb, "small")
    topo = build_topology("daisychain", mapping.num_modules)
    net = MemoryNetwork(sim, topo, make_mechanism(mechanism), mapping)
    return sim, net


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "bt.D"
    profile = get_profile(workload)

    # 1. Record a trace from a closed-loop full-power run.
    sim, net = build(profile, "FP")
    recorder = TraceRecorder(net)
    wl = ClosedLoopWorkload(net, profile, stop_ns=WINDOW_NS, seed=3)
    net.start()
    wl.start()
    sim.run(until=WINDOW_NS)
    with tempfile.NamedTemporaryFile(suffix=".trace.gz", delete=False) as fh:
        path = fh.name
    count = save_trace(path, recorder.records)
    print(f"Recorded {count} accesses from {workload} into {path}")
    print(f"(first record: {load_trace(path)[0].to_line()!r})\n")

    # 2. Replay the identical trace under each mechanism.
    rows = []
    for mechanism in ("FP", "VWL", "ROO", "VWL+ROO"):
        sim, net = build(profile, mechanism)
        tracker = LatencyTracker(net)
        replay = TraceReplayWorkload(net, path)
        net.start()
        if mechanism != "FP":
            NetworkUnawarePolicy(net, alpha=0.05, epoch_ns=20_000.0).start()
        replay.start()
        sim.run(until=WINDOW_NS)
        net.finalize(WINDOW_NS)
        breakdown = PowerBreakdown.from_ledgers(
            (m.ledger for m in net.modules), WINDOW_NS, len(net.modules)
        )
        summary = tracker.summary()
        rows.append([
            mechanism,
            f"{breakdown.total_w:.2f}",
            f"{breakdown.watts['idle_io']:.2f}",
            f"{summary['mean_ns']:.0f}",
            f"{summary['p95_ns']:.0f}",
            f"{summary['p99_ns']:.0f}",
        ])
    print(format_table(
        ["mechanism", "W/HMC", "idle I/O W", "mean lat (ns)", "p95", "p99"],
        rows,
        title=f"Identical {workload} trace replayed per mechanism (unaware mgmt, alpha=5%)",
    ))
    print("\nSame arrivals, different links: the power gap is pure mechanism,")
    print("and the latency percentiles show what each mode costs the tail.")


if __name__ == "__main__":
    main()
