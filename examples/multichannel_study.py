#!/usr/bin/env python
"""Multi-channel systems: does single-channel methodology generalize?

The paper evaluates a single HMC channel, arguing channels are
independent and statistically alike (Section III-C), and leaves
inter-channel power effects to future work.  This example simulates a
four-channel system (four independent networks with distinct seeds),
quantifies the per-channel spread, and reports system-level power.

Usage::

    python examples/multichannel_study.py [workload]
"""

import sys

from repro import ExperimentConfig
from repro.harness import format_table, run_multichannel


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mixC"
    config = ExperimentConfig(
        workload=workload,
        topology="star",
        scale="small",
        mechanism="VWL+ROO",
        policy="aware",
        alpha=0.05,
        window_ns=200_000.0,
        epoch_ns=20_000.0,
    )
    print(f"Simulating 4 independent channels of {workload}...")
    system = run_multichannel(config, channels=4)

    rows = []
    for i, channel in enumerate(system.channels):
        rows.append([
            i,
            channel.config.seed,
            f"{channel.network_power_w:.2f}",
            f"{channel.idle_io_fraction:.0%}",
            f"{channel.throughput_per_s:.3e}",
            f"{channel.avg_read_latency_ns:.0f}",
        ])
    print()
    print(format_table(
        ["channel", "seed", "network W", "idle I/O", "accesses/s", "lat (ns)"],
        rows,
        title="Per-channel results (aware VWL+ROO, alpha=5%)",
    ))
    print()
    print(f"System power      : {system.total_network_power_w:.2f} W over "
          f"{system.total_modules} HMCs "
          f"({system.avg_power_per_hmc_w:.2f} W/HMC)")
    print(f"System throughput : {system.total_throughput_per_s:.3e} accesses/s")
    print(f"Channel spread    : {system.channel_power_spread():.1%} "
          f"(max-min)/mean power")
    print()
    print("A small spread supports the paper's single-channel methodology:")
    print("channel-interleaved traffic makes channels statistically alike,")
    print("so per-channel conclusions scale to the whole system.")


if __name__ == "__main__":
    main()
