#!/usr/bin/env python
"""Quickstart: simulate one workload on one memory network.

Runs the mixB cloud workload on a star network of 4 GB HMCs, first at
full power and then under network-aware VWL+ROO management, and prints
the power breakdown and the performance cost.

Usage::

    python examples/quickstart.py
"""

from repro import ExperimentConfig, run_experiment
from repro.harness import format_table


def main() -> None:
    base = ExperimentConfig(
        workload="mixB",
        topology="star",
        scale="small",
        window_ns=400_000.0,  # 0.4 ms simulated
        epoch_ns=25_000.0,
    )

    print("Simulating mixB on a star network of HMCs...")
    full_power = run_experiment(base)
    managed = run_experiment(
        base.replace(mechanism="VWL+ROO", policy="aware", alpha=0.05)
    )

    rows = []
    for category in full_power.breakdown.categories():
        rows.append([
            category,
            f"{full_power.breakdown.watts[category]:.3f}",
            f"{managed.breakdown.watts[category]:.3f}",
        ])
    rows.append([
        "TOTAL",
        f"{full_power.power_per_hmc_w:.3f}",
        f"{managed.power_per_hmc_w:.3f}",
    ])
    print()
    print(format_table(
        ["category (W/HMC)", "full power", "aware VWL+ROO"],
        rows,
        title=f"Power breakdown, {full_power.num_modules}-HMC star network",
    ))

    saved = 1 - managed.network_power_w / full_power.network_power_w
    deg = 1 - managed.throughput_per_s / full_power.throughput_per_s
    print()
    print(f"Network power saved : {saved:6.1%}")
    print(f"Throughput cost     : {deg:6.2%}  (alpha budget was 5%)")
    print(f"Avg read latency    : {full_power.avg_read_latency_ns:.0f} ns -> "
          f"{managed.avg_read_latency_ns:.0f} ns")
    print(f"Channel utilization : {full_power.channel_utilization:.0%}")


if __name__ == "__main__":
    main()
