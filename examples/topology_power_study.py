#!/usr/bin/env python
"""Topology power study: where does memory-network power go?

Reproduces the Section III analysis at example scale: runs one HPC and
one cloud workload over all four paper topologies at full power, in both
the small (4 GB/HMC) and big (1 GB/HMC) network studies, and reports

* the per-HMC power breakdown (Figure 5's stack),
* idle I/O's share of network power (Figure 8),
* modules traversed per access (Figure 6),
* channel vs. average link utilization (Figure 9).

Usage::

    python examples/topology_power_study.py [workload ...]
"""

import sys

from repro import ExperimentConfig, SweepRunner, TOPOLOGY_NAMES
from repro.harness import format_table


def main() -> None:
    workloads = sys.argv[1:] or ["cg.D", "mixA"]
    runner = SweepRunner()
    rows = []
    for workload in workloads:
        for scale in ("small", "big"):
            for topology in TOPOLOGY_NAMES:
                res = runner.run(ExperimentConfig(
                    workload=workload,
                    topology=topology,
                    scale=scale,
                    window_ns=300_000.0,
                ))
                rows.append([
                    workload,
                    scale,
                    topology,
                    res.num_modules,
                    f"{res.power_per_hmc_w:.2f}",
                    f"{res.breakdown.io_fraction:.0%}",
                    f"{res.idle_io_fraction:.0%}",
                    f"{res.avg_modules_traversed:.1f}",
                    f"{res.channel_utilization:.0%}",
                    f"{res.link_utilization:.0%}",
                ])
    print(format_table(
        ["workload", "scale", "topology", "HMCs", "W/HMC",
         "I/O share", "idle I/O share", "hops/access", "chan util", "link util"],
        rows,
        title="Full-power memory network characterization (Figures 5/6/8/9)",
    ))
    print()
    print("Key findings to look for (Section III-D):")
    print(" * I/O is the biggest power contributor (~73% in the paper);")
    print(" * idle I/O alone exceeds half of network power, more so for")
    print("   big networks, because traffic attenuates across the network")
    print("   (link utilization far below channel utilization);")
    print(" * the daisychain traverses the most modules per access.")


if __name__ == "__main__":
    main()
