#!/usr/bin/env python
"""How much hardware does the management actually cost?

Prints the counter-storage and ISP message overheads for the paper's
topologies at representative sizes -- the quantitative backing for the
paper's claim that its schemes are cheap (a few hundred bytes of
counters per module and one 64 B message per module per ISP step).

Usage::

    python examples/hardware_cost_report.py
"""

from repro import TOPOLOGY_NAMES, build_topology, make_mechanism
from repro.core import link_counter_bits, module_counter_bits, network_overhead
from repro.harness import format_table


def main() -> None:
    rows = []
    for mech_name in ("VWL", "ROO", "VWL+ROO", "DVFS+ROO"):
        mech = make_mechanism(mech_name)
        for aware in (False, True):
            budget = link_counter_bits(mech, network_aware=aware)
            rows.append([
                mech_name,
                "aware" if aware else "unaware",
                f"{budget.total_bytes:.0f} B",
                f"{budget.delay_monitors // 8} B",
                f"{budget.idle_histogram // 8} B",
                f"{budget.congestion // 8} B",
            ])
    print(format_table(
        ["mechanism", "scheme", "per-link state", "delay monitors",
         "idle histogram", "QD/QF"],
        rows,
        title="Per-link-controller counter storage",
    ))
    print(f"\nPer-module Equation 1 state: "
          f"{module_counter_bits().total_bytes:.0f} B")

    rows = []
    for name in TOPOLOGY_NAMES:
        for n in (5, 17, 34):
            topo = build_topology(name, n)
            ov = network_overhead(topo, make_mechanism("VWL+ROO"), True)
            rows.append([
                name, n,
                f"{ov.total_counter_bits / 8 / 1024:.1f} KiB",
                ov.isp_messages_per_epoch,
                f"{ov.isp_bytes_per_epoch} B",
                f"{ov.isp_wire_fraction_of_epoch:.4%}",
            ])
    print()
    print(format_table(
        ["topology", "HMCs", "total counters", "ISP msgs/epoch",
         "ISP bytes/epoch", "wire time/epoch"],
        rows,
        title="Network-aware (ISP) overheads per 100 us epoch, VWL+ROO",
    ))
    print("\nManagement traffic occupies well under 0.01% of link time;")
    print("counter state is a few hundred bytes per module.")


if __name__ == "__main__":
    main()
