#!/usr/bin/env python
"""Sweep the performance budget alpha and plot the trade-off curve.

Reproduces the Section VII-A methodology: sweep alpha for network-aware
management, draw the power/performance Pareto frontier, and find the
iso-performance point against the static fat/tapered-tree baseline.

Usage::

    python examples/alpha_sweep.py [workload] [topology]
"""

import sys

from repro import ExperimentConfig, SweepRunner
from repro.harness import (
    alpha_for_degradation,
    format_table,
    line_chart,
    pareto_frontier,
    sweep_alpha,
)
from repro.harness.pareto import DEFAULT_ALPHAS


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mg.D"
    topology = sys.argv[2] if len(sys.argv) > 2 else "star"
    runner = SweepRunner()
    config = ExperimentConfig(
        workload=workload,
        topology=topology,
        scale="big",
        mechanism="VWL",
        policy="aware",
        window_ns=300_000.0,
        epoch_ns=20_000.0,
    )

    print(f"Sweeping alpha over {DEFAULT_ALPHAS} for {workload} / big {topology}...")
    points = sweep_alpha(runner, config)

    rows = [
        [f"{p.alpha:.1%}", f"{p.power_saved:.1%}", f"{p.degradation:.2%}"]
        for p in points
    ]
    print()
    print(format_table(
        ["alpha", "power saved", "throughput cost"], rows,
        title="Network-aware VWL power/performance trade-off",
    ))

    frontier = pareto_frontier(points)
    print()
    print(line_chart(
        [("alpha sweep", [(p.degradation * 100, p.power_saved * 100) for p in points])],
        width=50, height=12,
        title="Power saved (%) vs throughput cost (%)",
    ))

    # Iso-performance comparison against the static baseline (VII-A).
    static_cfg = config.replace(policy="static", alpha=0.05, mapping="interleaved")
    static_deg = runner.degradation_vs_baseline(static_cfg)
    static_saved = runner.power_reduction_vs_baseline(static_cfg)
    match = alpha_for_degradation(points, max(static_deg, points[0].degradation))
    print()
    print(f"Static fat/tapered baseline: {static_saved:.1%} saved at "
          f"{static_deg:.2%} throughput cost (untunable).")
    if match is not None:
        print(f"Network-aware at alpha={match.alpha:.0%} matches that budget: "
              f"{match.power_saved:.1%} saved at {match.degradation:.2%} cost.")
    print(f"Pareto frontier has {len(frontier)} of {len(points)} swept points.")


if __name__ == "__main__":
    main()
