#!/usr/bin/env python
"""Bring your own workload: drive the simulator with a custom profile.

Shows the lower-level API: define a :class:`WorkloadProfile` for an
application the paper never measured (a 20 GB key-value store with a
Zipf-ish hot set and bursty traffic), assemble the network by hand, run
it under network-aware management, and inspect per-module state.

Usage::

    python examples/custom_workload.py
"""

from repro import (
    ClosedLoopWorkload,
    NetworkAwarePolicy,
    MemoryNetwork,
    Simulator,
    build_topology,
    make_mechanism,
)
from repro.harness import format_table
from repro.power import PowerBreakdown
from repro.workloads import WorkloadProfile, modules_for_footprint
from repro.workloads.mapping import contiguous_mapping

WINDOW_NS = 400_000.0

#: A synthetic key-value store: 20 GB footprint, a 2 GB hot set taking
#: 70 % of accesses, read-heavy, moderately bursty.
KV_STORE = WorkloadProfile(
    name="kvstore",
    footprint_gb=20.0,
    channel_util=0.45,
    read_fraction=0.90,
    cdf=((0.0, 0.0), (2.0, 0.70), (8.0, 0.85), (20.0, 1.0)),
    duty=0.6,
    run_length=2.0,
    description="synthetic key-value store with a Zipf-ish hot set",
)


def main() -> None:
    sim = Simulator()
    num_modules = modules_for_footprint(KV_STORE.footprint_gb, "big")
    topology = build_topology("ternary_tree", num_modules)
    mapping = contiguous_mapping(KV_STORE.footprint_gb, "big")
    network = MemoryNetwork(
        sim, topology, make_mechanism("VWL+ROO"), mapping
    )
    policy = NetworkAwarePolicy(network, alpha=0.05, epoch_ns=25_000.0)
    workload = ClosedLoopWorkload(network, KV_STORE, stop_ns=WINDOW_NS, seed=7)

    network.start()
    policy.start()
    workload.start()
    sim.run(until=WINDOW_NS)
    network.finalize(WINDOW_NS)

    print(f"Simulated {sim.now / 1e6:.2f} ms of a {num_modules}-HMC ternary tree")
    print(f"Completed {network.completed_reads} reads / "
          f"{network.completed_writes} writes; "
          f"avg read latency {network.avg_read_latency_ns:.0f} ns; "
          f"{policy.epochs_run} epochs, {policy.violations} violations.\n")

    rows = []
    for module in network.modules:
        bd = PowerBreakdown.from_ledgers([module.ledger], WINDOW_NS, 1)
        req, resp = module.req_in, module.resp_out
        rows.append([
            module.module_id,
            topology.depth(module.module_id),
            module.dram_reads,
            f"{bd.total_w:.2f}",
            f"{bd.watts['idle_io']:.2f}",
            f"{req.mech.width_modes[req.width_idx].name}"
            + ("/off" if req.is_off else ""),
            f"{resp.mech.width_modes[resp.width_idx].name}"
            + ("/off" if resp.is_off else ""),
            f"{req.off_time_ns / WINDOW_NS:.0%}",
        ])
    print(format_table(
        ["HMC", "hops", "DRAM reads", "W", "idle I/O W",
         "req link", "resp link", "req off time"],
        rows,
        title="Per-module state after network-aware management",
    ))
    print()
    print("The 2 GB hot set sits in HMCs 0-1; colder modules settle into")
    print("narrow, mostly-off links while the hot path stays wide.")


if __name__ == "__main__":
    main()
