#!/usr/bin/env python
"""Power-management shoot-out on one workload.

Compares every mechanism (VWL, ROO, DVFS and the +ROO combos) under
network-unaware and network-aware management against the full-power
baseline and the static fat/tapered-tree selection of Section VII-A,
reporting network power savings and throughput cost side by side --
an example-scale fusion of Figures 11, 15, and the Section VII-A
comparison.

Usage::

    python examples/power_management_comparison.py [workload] [topology]
"""

import sys

from repro import ExperimentConfig, SweepRunner
from repro.harness import format_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "is.D"
    topology = sys.argv[2] if len(sys.argv) > 2 else "ddrx_like"
    runner = SweepRunner()
    base = ExperimentConfig(
        workload=workload,
        topology=topology,
        scale="big",
        window_ns=400_000.0,
        epoch_ns=25_000.0,
        alpha=0.05,
    )
    fp = runner.run(base)
    print(
        f"Baseline: {workload} on a big {topology} network "
        f"({fp.num_modules} HMCs), {fp.power_per_hmc_w:.2f} W/HMC at full power.\n"
    )

    rows = []
    for mechanism in ("VWL", "ROO", "DVFS", "VWL+ROO", "DVFS+ROO"):
        for policy in ("unaware", "aware"):
            cfg = base.replace(mechanism=mechanism, policy=policy)
            res = runner.run(cfg)
            rows.append([
                mechanism,
                policy,
                f"{runner.power_reduction_vs_baseline(cfg):.1%}",
                f"{runner.io_power_reduction_vs_baseline(cfg):.1%}",
                f"{runner.degradation_vs_baseline(cfg):.2%}",
                res.violations,
            ])
    static_cfg = base.replace(mechanism="VWL", policy="static", mapping="interleaved")
    rows.append([
        "VWL (static fat/tapered)",
        "static",
        f"{runner.power_reduction_vs_baseline(static_cfg):.1%}",
        f"{runner.io_power_reduction_vs_baseline(static_cfg):.1%}",
        f"{runner.degradation_vs_baseline(static_cfg):.2%}",
        "-",
    ])
    print(format_table(
        ["mechanism", "policy", "power saved", "I/O power saved",
         "throughput cost", "violations"],
        rows,
        title=f"Management comparison: {workload} / big {topology} (alpha=5%)",
    ))
    print()
    print("Expected shape (Sections V-VII): network-aware beats unaware for")
    print("every mechanism; DVFS trails VWL at equal alpha; the static")
    print("baseline trades an untunable, workload-blind performance hit for")
    print("its savings.")


if __name__ == "__main__":
    main()
