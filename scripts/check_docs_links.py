#!/usr/bin/env python3
"""Check that docs stay consistent with the repo: links and CLI usage.

Two guards over every tracked ``*.md`` file, used by
``tests/test_docs_and_examples.py`` and the CI docs job:

* intra-repo Markdown links must resolve to real files (anchors and
  external ``http(s)``/``mailto`` links are ignored);
* every ``repro-mnet`` invocation must name a real subcommand and real
  flags for that subcommand, verified against the live argparse tree
  (so renaming a flag without updating the docs fails CI).

::

    python scripts/check_docs_links.py          # exit 1 on any drift
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Dict, List, Set, Tuple

#: Inline Markdown links: [text](target). Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Directories that hold generated or third-party content.
_SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", "results", ".venv", ".claude"}

#: A ``repro-mnet`` invocation start: not part of a path
#: (``~/.cache/repro-mnet``) or a schema id (``repro-mnet-bench/v1``).
_CLI_CALL = re.compile(r"(?<![\w/.-])repro-mnet(?![\w/-])")

#: Tokens that end one command within a line (chaining, comments).
_CLI_STOP = {"&&", "||", ";", "|", "#"}


def _markdown_files(repo: pathlib.Path) -> List[pathlib.Path]:
    out = []
    for path in repo.rglob("*.md"):
        if not _SKIP_DIRS.intersection(p.name for p in path.parents):
            out.append(path)
    return sorted(out)


def broken_links(repo: pathlib.Path) -> List[Tuple[str, str]]:
    """All broken intra-repo links as ``(markdown file, target)`` pairs."""
    broken: List[Tuple[str, str]] = []
    for md in _markdown_files(repo):
        for target in _LINK.findall(md.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                broken.append((str(md.relative_to(repo)), target))
    return broken


def cli_surface(repo: pathlib.Path) -> Dict[str, Set[str]]:
    """subcommand -> set of ``--flags`` from the live argparse tree."""
    src = str(repo / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    import argparse

    from repro.cli import build_parser

    parser = build_parser()
    commands: Dict[str, Set[str]] = {}
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                commands[name] = {
                    opt
                    for sub_action in sub._actions
                    for opt in sub_action.option_strings
                    if opt.startswith("--")
                }
    return commands


#: Prose punctuation that may trail a token (``--json`,`` / ``run`.``).
_TRAIL = "),.;:!?'\""


def _clean_token(token: str) -> str:
    """Strip code-span backticks and trailing prose punctuation.

    Punctuation and backticks interleave at the end of a code span
    (``--quick`.``), so strip in both orders.
    """
    return token.rstrip(_TRAIL).strip("`").rstrip(_TRAIL)


def cli_drift(repo: pathlib.Path) -> List[Tuple[str, str]]:
    """Doc'd ``repro-mnet`` usage that the argparse tree does not have.

    Scans each occurrence for a subcommand token and ``--flag`` tokens
    (up to the end of the code span / command), and reports unknown
    subcommands and flags as ``(markdown file, problem)`` pairs.
    Values, paths, and prose tokens are ignored.
    """
    commands = cli_surface(repo)
    all_flags = set().union(*commands.values())
    problems: List[Tuple[str, str]] = []
    for md in _markdown_files(repo):
        # Join backslash line-continuations so multi-line command
        # examples scan as one invocation.
        text = re.sub(r"\\\n\s*", " ", md.read_text())
        for line in text.splitlines():
            for match in _CLI_CALL.finditer(line):
                rest = line[match.end():]
                if rest.startswith("`"):
                    continue  # ``repro-mnet`` mentioned as a bare name
                subcommand = None
                for raw in rest.split():
                    stop = raw.rstrip(_TRAIL).endswith("`")
                    token = _clean_token(raw)
                    if token in _CLI_STOP or token.startswith("#"):
                        break
                    if token.startswith("--"):
                        flag = token.split("=", 1)[0]
                        known = (
                            commands[subcommand]
                            if subcommand in commands
                            else all_flags
                        )
                        if re.fullmatch(r"--[a-z][a-z0-9-]*", flag) and (
                            flag not in known and flag != "--help"
                        ):
                            where = subcommand or "repro-mnet"
                            problems.append(
                                (str(md.relative_to(repo)),
                                 f"unknown flag {flag} for '{where}'")
                            )
                    elif subcommand is None:
                        if not re.fullmatch(r"[a-z][a-z0-9-]+", token):
                            break  # prose, not a command line
                        if token not in commands:
                            problems.append(
                                (str(md.relative_to(repo)),
                                 f"unknown subcommand '{token}'")
                            )
                            break
                        subcommand = token
                    if stop:
                        break
    return problems


def main() -> int:
    """CLI entry point; prints broken links and returns the exit code."""
    repo = pathlib.Path(__file__).resolve().parent.parent
    broken = broken_links(repo)
    for src, target in broken:
        print(f"{src}: broken link -> {target}")
    drift = cli_drift(repo)
    for src, problem in drift:
        print(f"{src}: CLI drift -> {problem}")
    if broken or drift:
        print(f"{len(broken)} broken intra-repo link(s), "
              f"{len(drift)} doc/CLI drift problem(s)", file=sys.stderr)
        return 1
    print(f"all intra-repo links and repro-mnet usages check out across "
          f"{len(_markdown_files(repo))} Markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
