#!/usr/bin/env python3
"""Check that intra-repo Markdown links resolve to real files.

Scans every tracked ``*.md`` file for inline links and flags relative
targets that do not exist (anchors and external ``http(s)``/``mailto``
links are ignored). Used by ``tests/test_docs_and_examples.py`` and the
CI docs job::

    python scripts/check_docs_links.py          # exit 1 on broken links
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import List, Tuple

#: Inline Markdown links: [text](target). Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Directories that hold generated or third-party content.
_SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", "results", ".venv"}


def _markdown_files(repo: pathlib.Path) -> List[pathlib.Path]:
    out = []
    for path in repo.rglob("*.md"):
        if not _SKIP_DIRS.intersection(p.name for p in path.parents):
            out.append(path)
    return sorted(out)


def broken_links(repo: pathlib.Path) -> List[Tuple[str, str]]:
    """All broken intra-repo links as ``(markdown file, target)`` pairs."""
    broken: List[Tuple[str, str]] = []
    for md in _markdown_files(repo):
        for target in _LINK.findall(md.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                broken.append((str(md.relative_to(repo)), target))
    return broken


def main() -> int:
    """CLI entry point; prints broken links and returns the exit code."""
    repo = pathlib.Path(__file__).resolve().parent.parent
    broken = broken_links(repo)
    for src, target in broken:
        print(f"{src}: broken link -> {target}")
    if broken:
        print(f"{len(broken)} broken intra-repo link(s)", file=sys.stderr)
        return 1
    print(f"all intra-repo links resolve across "
          f"{len(_markdown_files(repo))} Markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
