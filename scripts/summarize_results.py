#!/usr/bin/env python
"""Summarize results/*.txt into the headline numbers EXPERIMENTS.md cites.

Run after ``pytest benchmarks/ --benchmark-only``; parses the persisted
tables and prints per-artifact aggregates (averages over topologies and
workloads) next to the paper's published values.
"""

import pathlib
import re
import sys

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"


def rows_of(name, columns):
    """Yield whitespace-split rows with the expected column count."""
    path = RESULTS / name
    if not path.exists():
        return
    for line in path.read_text().splitlines():
        parts = line.split()
        if len(parts) == columns and parts[0] in ("small", "big"):
            yield parts


def pct(s):
    return float(s.rstrip("%")) / 100.0


def avg(vals):
    vals = list(vals)
    return sum(vals) / len(vals) if vals else float("nan")


def main():
    # Figure 6: modules traversed.
    f6 = list(rows_of("fig6_hops.txt", 7))
    if f6:
        for scale in ("small", "big"):
            by_topo = {}
            for r in f6:
                if r[0] == scale:
                    by_topo.setdefault(r[1], []).append(float(r[-1]))
            line = ", ".join(f"{t}={avg(v):.1f}" for t, v in by_topo.items())
            print(f"F6 {scale}: {line}")

    # Figure 8: idle I/O fraction.
    f8 = list(rows_of("fig8_idle_io_fraction.txt", 7))
    if f8:
        for scale in ("small", "big"):
            vals = [pct(r[-1]) for r in f8 if r[0] == scale]
            print(f"F8 {scale}: avg idle-I/O fraction {avg(vals):.0%}")

    # Figure 9: utilizations.
    f9 = list(rows_of("fig9_utilization.txt", 5))
    if f9:
        chans = [pct(r[3]) for r in f9]
        links = [pct(r[4]) for r in f9]
        print(f"F9: avg channel util {avg(chans):.0%}, avg link util {avg(links):.0%}")

    # Figure 15: aware vs unaware reduction.
    f15 = list(rows_of("fig15_aware_vs_unaware.txt", 5))
    if f15:
        for scale in ("small", "big"):
            vals = [pct(r[-1]) for r in f15 if r[0] == scale]
            positive = sum(1 for v in vals if v > -0.02)
            print(f"F15 {scale}: avg further reduction {avg(vals):.1%} "
                  f"({positive}/{len(vals)} cells favour aware)")

    # Figure 16 per workload.
    path = RESULTS / "fig16_per_workload.txt"
    if path.exists():
        wins = total = 0
        for line in path.read_text().splitlines():
            parts = line.split()
            if len(parts) == 7 and parts[0] not in ("workload", "Figure"):
                try:
                    pairs = [(pct(parts[i]), pct(parts[i + 1])) for i in (1, 3, 5)]
                except ValueError:
                    continue
                for unaware, aware in pairs:
                    total += 1
                    wins += aware >= unaware - 0.02
        if total:
            print(f"F16: aware >= unaware in {wins}/{total} workload cells")

    # Figure 17.
    f17 = list(rows_of("fig17_aware_perf.txt", 6))
    if f17:
        rel = [pct(r[4]) for r in f17]
        worst = max(pct(r[5]) for r in f17)
        print(f"F17: avg degradation vs unaware {avg(rel):.2%}, "
              f"max vs FP {worst:.2%}")

    # Figure 18.
    f18 = list(rows_of("fig18_dvfs_sensitivity.txt", 5))
    if f18:
        for scale in ("small", "big"):
            for label in ("DVFS", "ROO@20ns", "DVFS+ROO@20ns"):
                cells = {r[2]: (pct(r[3]), pct(r[4])) for r in f18
                         if r[0] == scale and r[1] == label}
                if cells:
                    u, a = cells.get("unaware"), cells.get("aware")
                    print(f"F18 {scale} {label}: unaware {u[0]:.1%}/{u[1]:.2%}, "
                          f"aware {a[0]:.1%}/{a[1]:.2%}")

    # Section VII-A.
    path = RESULTS / "sec7_static_baseline.txt"
    if path.exists():
        print("S7:")
        for line in path.read_text().splitlines():
            if "degradation" in line or "reduction" in line:
                print("   " + line.strip())


if __name__ == "__main__":
    sys.exit(main())
