#!/usr/bin/env python3
"""End-to-end smoke of ``repro-mnet store migrate`` (CI serve job step).

Exercises the operational story docs/serving.md tells for adopting the
SQLite backend on an existing installation:

1. seed a JSON-directory cache with two real CLI runs;
2. ``repro-mnet store migrate`` copies every entry into
   ``results.sqlite``, verifying counts and sampled payload equality;
3. ``repro-mnet store stats --store sqlite`` agrees on the entry count;
4. a repeat ``repro-mnet run --store sqlite`` is served from the
   migrated store (``# 0 simulated``) with stdout byte-identical to the
   original JSON-backed run.

Run from the repository root::

    python scripts/store_migrate_smoke.py
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent

RUNS = [
    ["--workload", "mixB", "--window-us", "40", "--epoch-us", "10"],
    ["--workload", "sp.D", "--window-us", "40", "--epoch-us", "10",
     "--mechanism", "VWL", "--policy", "unaware"],
]

FAILURES = []


def check(ok: bool, label: str, detail: str = "") -> None:
    """Record one assertion; failures are fatal at exit, not mid-run."""
    status = "ok" if ok else "FAIL"
    print(f"[store-migrate-smoke] {status}: {label}"
          + (f" ({detail})" if detail else ""))
    if not ok:
        FAILURES.append(label)


def main() -> int:
    """Run the smoke sequence; returns a process exit code."""
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="store-migrate-smoke-"))
    cache_dir = workdir / "cache"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    cli = [sys.executable, "-m", "repro.cli"]

    def run_cli(args):
        return subprocess.run(cli + args, capture_output=True, text=True,
                              env=env, cwd=REPO)

    # 1. Seed the JSON cache with real runs.
    json_stdout = []
    for flags in RUNS:
        proc = run_cli(["run", *flags, "--cache-dir", str(cache_dir)])
        check(proc.returncode == 0, f"seed run exits 0 ({flags[1]})",
              proc.stderr.strip())
        json_stdout.append(proc.stdout)

    # 2. Migrate into results.sqlite with verification on.
    proc = run_cli(["store", "migrate", "--cache-dir", str(cache_dir)])
    print(proc.stdout, end="")
    check(proc.returncode == 0, "store migrate exits 0", proc.stderr.strip())
    check("verified           OK" in proc.stdout,
          "migration verification reports OK")
    check(f"migrated           {len(RUNS)}" in proc.stdout,
          f"all {len(RUNS)} entries migrated")
    sqlite_path = cache_dir / "results.sqlite"
    check(sqlite_path.is_file(), "results.sqlite exists next to the JSON dirs")

    # 3. The sqlite backend agrees on what it now holds.
    proc = run_cli(["store", "stats", "--store", "sqlite",
                    "--cache-dir", str(cache_dir)])
    check(proc.returncode == 0, "store stats exits 0", proc.stderr.strip())
    stats = dict(
        line.split(None, 1) for line in proc.stdout.splitlines() if line.strip()
    )
    check(stats.get("backend") == "sqlite", "stats reports the sqlite backend")
    check(stats.get("entries") == str(len(RUNS)),
          f"stats reports {len(RUNS)} entries", str(stats.get("entries")))

    # 4. Repeat runs against the migrated store: served from disk,
    # stdout byte-identical to the JSON-backed originals.
    for flags, expected in zip(RUNS, json_stdout):
        proc = run_cli(["run", *flags, "--cache-dir", str(cache_dir),
                        "--store", "sqlite"])
        check(proc.returncode == 0,
              f"sqlite-backed rerun exits 0 ({flags[1]})", proc.stderr.strip())
        check("# 0 simulated" in proc.stderr,
              f"rerun served from the migrated store ({flags[1]})",
              proc.stderr.strip())
        check(proc.stdout == expected,
              f"rerun stdout byte-identical to the JSON run ({flags[1]})")

    if FAILURES:
        print(f"[store-migrate-smoke] {len(FAILURES)} check(s) FAILED: "
              f"{FAILURES}")
        return 1
    print("[store-migrate-smoke] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
