"""Maintenance scripts (result summarization, docs link checking)."""
