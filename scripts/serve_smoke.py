#!/usr/bin/env python3
"""End-to-end smoke test of ``repro-mnet serve`` (the CI ``serve`` job).

Starts a real server subprocess and proves the serving contract from
the outside, driving the versioned ``/v1/`` API through the supported
Python SDK (:class:`repro.serve.client.ServeClient`):

1. N identical concurrent requests trigger exactly ONE simulation
   (``/v1/stats`` shows ``simulated == 1`` and
   ``dedup_coalesced == N-1``);
2. a repeat request is answered by the memory tier;
3. the server's ``summary`` response is byte-identical to
   ``repro-mnet run`` stdout for the same config (both read the shared
   result store, so even the wall-time row matches);
4. the unversioned alias paths answer identically to ``/v1/`` but carry
   a ``Deprecation`` header (and ``/v1/`` paths do not);
5. overload against a bounded queue yields HTTP 429 with a
   ``Retry-After`` header while admitted requests still complete;
6. SIGTERM drains gracefully: the in-flight request completes with 200,
   new requests are refused with 503, the journal holds the completed
   work, and the process exits 0.

Run from the repository root::

    python scripts/serve_smoke.py                  # JSON store backend
    python scripts/serve_smoke.py --store sqlite   # SQLite store backend
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.serve.client import (  # noqa: E402 - path bootstrap above
    ServeClient,
    ServeError,
    ServeRejectedError,
)

#: The shared test config, expressible identically through CLI flags.
CONFIG = {"workload": "mixB", "window_ns": 60_000.0, "epoch_ns": 15_000.0}
RUN_FLAGS = ["--workload", "mixB", "--window-us", "60", "--epoch-us", "15"]

FAILURES = []


def check(ok: bool, label: str, detail: str = "") -> None:
    """Record one assertion; failures are fatal at exit, not mid-run."""
    status = "ok" if ok else "FAIL"
    print(f"[serve-smoke] {status}: {label}" + (f" ({detail})" if detail else ""))
    if not ok:
        FAILURES.append(label)


def main() -> int:
    """Run the smoke sequence; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", choices=["json", "sqlite"], default="json",
                        help="result-store backend for server and CLI")
    args = parser.parse_args()

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    cache_dir = workdir / "cache"
    journal = workdir / "journal.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    cli = [sys.executable, "-m", "repro.cli"]
    store_flags = ["--store", args.store]

    server = subprocess.Popen(
        cli + [
            "serve", "--port", "0", "--cache-dir", str(cache_dir),
            *store_flags,
            "--queue-limit", "2", "--batch-window-ms", "20",
            "--journal", str(journal),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env, cwd=REPO,
    )
    try:
        line = server.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        if not match:
            print(f"server did not announce its address: {line!r}")
            return 1
        base = f"http://{match.group(1)}:{match.group(2)}"
        print(f"[serve-smoke] server at {base} (--store {args.store})")
        client = ServeClient(base, timeout_s=120.0)

        health = client.healthz()
        check(health["status"] == "healthy", "healthz reports healthy")
        check(health["live"] is True and health["ready"] is True,
              "liveness and readiness probes are green")

        # 1. Single-flight dedup: N identical concurrent requests.
        n = 8
        outcomes = [None] * n

        def fire(i: int) -> None:
            try:
                outcomes[i] = client.run_detailed(CONFIG)
            except ServeError as exc:
                outcomes[i] = exc

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        errors = [o for o in outcomes if isinstance(o, ServeError)]
        check(not errors, "identical concurrent requests all succeed",
              str(errors))
        stats = client.stats()
        check(stats["tiers"]["simulated"] == 1,
              "exactly one simulation ran",
              f"simulated={stats['tiers']['simulated']}")
        check(stats["dedup_coalesced"] == n - 1,
              f"{n - 1} requests coalesced onto the flight",
              f"coalesced={stats['dedup_coalesced']}")
        check(stats["disk_cache"].get("backend") == args.store,
              f"disk tier reports the {args.store} backend",
              str(stats["disk_cache"].get("backend")))

        # 2. Repeat request hits the memory tier.
        outcome = client.run_detailed(CONFIG)
        check(outcome.tier == "memory",
              "repeat request served by the memory tier",
              f"tier={outcome.tier}")
        summary = outcome.summary

        # 3. Byte-identical to `repro-mnet run` (shared result store).
        run = subprocess.run(
            cli + ["run", *RUN_FLAGS, "--cache-dir", str(cache_dir),
                   *store_flags],
            capture_output=True, text=True, env=env, cwd=REPO,
        )
        check(run.returncode == 0, "repro-mnet run exits 0", run.stderr.strip())
        check("# 0 simulated" in run.stderr,
              "CLI run was served from the shared result store",
              run.stderr.strip())
        check(run.stdout == summary + "\n",
              "server summary is byte-identical to repro-mnet run stdout")

        # 4. /v1/ vs unversioned aliases: same answers, Deprecation
        # header only on the aliases.
        for path in ("/healthz", "/stats", "/metrics"):
            s_v1, h_v1, b_v1 = client.request(f"/v1{path}")
            s_old, h_old, b_old = client.request(path)
            # Values may move between the two calls (counters,
            # heartbeat ages); the alias contract is same status and
            # same body shape.
            b_v1 = sorted(b_v1)
            b_old = sorted(b_old)
            check(s_v1 == s_old and b_v1 == b_old,
                  f"alias {path} answers like /v1{path}",
                  f"{s_old} vs {s_v1}")
            check(h_old.get("deprecation") == "true"
                  and "deprecation" not in h_v1,
                  f"alias {path} carries Deprecation, /v1{path} does not")
        status, headers, body = client.request("/run", body={"config": CONFIG})
        check(status == 200 and body.get("tier") == "memory",
              "POST /run alias serves from cache",
              f"status={status} tier={body.get('tier')}")
        check(headers.get("deprecation") == "true"
              and "successor-version" in headers.get("link", ""),
              "POST /run alias carries Deprecation + successor Link")

        # 5. Backpressure: 10 distinct configs against queue_limit=2,
        # observed through a client with retries disabled.
        raw_client = ServeClient(base, timeout_s=120.0, max_retries=0)
        m = 10
        overload = [None] * m

        def overload_fire(i: int) -> None:
            cfg = dict(CONFIG, seed=100 + i, window_ns=200_000.0)
            try:
                overload[i] = raw_client.run_detailed(cfg)
            except ServeError as exc:
                overload[i] = exc

        threads = [
            threading.Thread(target=overload_fire, args=(i,)) for i in range(m)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        rejected = [o for o in overload
                    if isinstance(o, ServeRejectedError) and o.status == 429]
        served = [o for o in overload if not isinstance(o, ServeError)]
        other = [o for o in overload
                 if isinstance(o, ServeError) and o not in rejected]
        check(bool(rejected), "overload produced 429 rejections",
              f"rejected={len(rejected)} served={len(served)} other={other}")
        check(bool(served), "admitted overload requests completed")
        check(all(o.retry_after_s is not None for o in rejected),
              "429 rejections carry Retry-After")
        stats = client.stats()
        check(stats["rejected_queue_full"] == len(rejected),
              "/v1/stats rejection counter matches observed 429s",
              f"stats={stats['rejected_queue_full']} observed={len(rejected)}")

        # 6. Retry-on-429 path: a retrying client eventually lands the
        # previously rejected config (queue is idle again by now).
        retrying = ServeClient(base, timeout_s=120.0, max_retries=5)
        retry_cfg = dict(CONFIG, seed=100, window_ns=200_000.0)
        retried = retrying.run_detailed(retry_cfg)
        check(retried.tier in ("memory", "disk", "simulated"),
              "retrying client lands a previously rejected config",
              f"tier={retried.tier}")

        # 7. Graceful drain: SIGTERM with one request in flight.
        inflight = {}

        def slow_fire() -> None:
            cfg = dict(CONFIG, seed=999, window_ns=300_000.0)
            try:
                inflight["outcome"] = client.run_detailed(cfg)
            except ServeError as exc:
                inflight["outcome"] = exc

        slow = threading.Thread(target=slow_fire)
        slow.start()
        time.sleep(0.5)  # let it be admitted and dispatched
        server.send_signal(signal.SIGTERM)
        # New work during the drain must be refused with 503 (the
        # listener may already be gone if the drain won the race).
        probe = ServeClient(base, timeout_s=5.0, max_retries=0)
        try:
            probe.run(dict(CONFIG, seed=7))
            check(False, "request during drain refused with 503",
                  "unexpected 200")
        except ServeRejectedError as exc:
            check(exc.status == 503, "request during drain refused with 503",
                  f"status={exc.status}")
        except ServeError:
            print("[serve-smoke] ok: drain finished before the probe connected")
        slow.join(timeout=120)
        check(not slow.is_alive(), "in-flight request resolved during drain")
        outcome = inflight.get("outcome")
        check(outcome is not None and not isinstance(outcome, ServeError),
              "in-flight request completed with 200 during drain",
              f"outcome={outcome!r}")
        try:
            exit_code = server.wait(timeout=60)
        except subprocess.TimeoutExpired:
            server.kill()
            exit_code = None
        check(exit_code == 0, "server exited 0 after SIGTERM",
              f"exit={exit_code}")
        done_lines = [
            json.loads(line)
            for line in journal.read_text().splitlines()
            if line.strip()
        ]
        check(any(rec["kind"] == "done" for rec in done_lines),
              "journal holds completed work after drain",
              f"{len(done_lines)} records")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
        out, err = server.communicate()
        if FAILURES:
            print("---- server stdout ----\n" + out)
            print("---- server stderr ----\n" + err)

    if FAILURES:
        print(f"[serve-smoke] {len(FAILURES)} check(s) FAILED: {FAILURES}")
        return 1
    print("[serve-smoke] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
