#!/usr/bin/env python3
"""End-to-end smoke test of ``repro-mnet serve`` (the CI ``serve`` job).

Starts a real server subprocess and proves the serving contract from
the outside:

1. N identical concurrent requests trigger exactly ONE simulation
   (``/stats`` shows ``simulated == 1`` and ``dedup_coalesced == N-1``);
2. a repeat request is answered by the memory tier;
3. the server's ``summary`` response is byte-identical to
   ``repro-mnet run`` stdout for the same config (both read the shared
   disk cache, so even the wall-time row matches);
4. overload against a bounded queue yields HTTP 429 with a
   ``Retry-After`` header while admitted requests still complete;
5. SIGTERM drains gracefully: the in-flight request completes with 200,
   new requests are refused with 503, the journal holds the completed
   work, and the process exits 0.

Run from the repository root::

    python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

REPO = pathlib.Path(__file__).resolve().parent.parent

#: The shared test config, expressible identically through CLI flags.
CONFIG = {"workload": "mixB", "window_ns": 60_000.0, "epoch_ns": 15_000.0}
RUN_FLAGS = ["--workload", "mixB", "--window-us", "60", "--epoch-us", "15"]

FAILURES = []


def check(ok: bool, label: str, detail: str = "") -> None:
    """Record one assertion; failures are fatal at exit, not mid-run."""
    status = "ok" if ok else "FAIL"
    print(f"[serve-smoke] {status}: {label}" + (f" ({detail})" if detail else ""))
    if not ok:
        FAILURES.append(label)


def request(base: str, path: str, body=None, timeout: float = 120.0):
    """(status, headers, parsed JSON body) for one HTTP round trip."""
    req = urllib.request.Request(
        base + path,
        data=None if body is None else json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def main() -> int:
    """Run the smoke sequence; returns a process exit code."""
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    cache_dir = workdir / "cache"
    journal = workdir / "journal.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    cli = [sys.executable, "-m", "repro.cli"]

    server = subprocess.Popen(
        cli + [
            "serve", "--port", "0", "--cache-dir", str(cache_dir),
            "--queue-limit", "2", "--batch-window-ms", "20",
            "--journal", str(journal),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env, cwd=REPO,
    )
    try:
        line = server.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        if not match:
            print(f"server did not announce its address: {line!r}")
            return 1
        base = f"http://{match.group(1)}:{match.group(2)}"
        print(f"[serve-smoke] server at {base}")

        status, _, body = request(base, "/healthz")
        check(status == 200 and body["status"] == "healthy",
              "healthz is 200/healthy")
        check(body["live"] is True and body["ready"] is True,
              "liveness and readiness probes are green")

        # 1. Single-flight dedup: N identical concurrent requests.
        n = 8
        outcomes = [None] * n

        def fire(i: int) -> None:
            outcomes[i] = request(base, "/v1/run", {"config": CONFIG})

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        statuses = [o[0] for o in outcomes]
        check(statuses == [200] * n, "identical concurrent requests all 200",
              str(statuses))
        _, _, stats = request(base, "/stats")
        check(stats["tiers"]["simulated"] == 1,
              "exactly one simulation ran",
              f"simulated={stats['tiers']['simulated']}")
        check(stats["dedup_coalesced"] == n - 1,
              f"{n - 1} requests coalesced onto the flight",
              f"coalesced={stats['dedup_coalesced']}")

        # 2. Repeat request hits the memory tier.
        status, _, body = request(base, "/v1/run", {"config": CONFIG})
        check(status == 200 and body["tier"] == "memory",
              "repeat request served by the memory tier",
              f"tier={body.get('tier')}")
        summary = body["summary"]

        # 3. Byte-identical to `repro-mnet run` (shared disk cache).
        run = subprocess.run(
            cli + ["run", *RUN_FLAGS, "--cache-dir", str(cache_dir)],
            capture_output=True, text=True, env=env, cwd=REPO,
        )
        check(run.returncode == 0, "repro-mnet run exits 0", run.stderr.strip())
        check("# 0 simulated" in run.stderr,
              "CLI run was served from the shared disk cache",
              run.stderr.strip())
        check(run.stdout == summary + "\n",
              "server summary is byte-identical to repro-mnet run stdout")

        # 4. Backpressure: 10 distinct configs against queue_limit=2.
        m = 10
        overload = [None] * m

        def overload_fire(i: int) -> None:
            cfg = dict(CONFIG, seed=100 + i, window_ns=200_000.0)
            overload[i] = request(base, "/v1/run", {"config": cfg})

        threads = [
            threading.Thread(target=overload_fire, args=(i,)) for i in range(m)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        codes = sorted(o[0] for o in overload)
        rejected = [o for o in overload if o[0] == 429]
        served = [o for o in overload if o[0] == 200]
        check(bool(rejected), "overload produced 429 rejections", str(codes))
        check(bool(served), "admitted overload requests completed", str(codes))
        check(all("Retry-After" in o[1] for o in rejected),
              "429 responses carry Retry-After")
        _, _, stats = request(base, "/stats")
        check(stats["rejected_queue_full"] == len(rejected),
              "/stats rejection counter matches observed 429s",
              f"stats={stats['rejected_queue_full']} observed={len(rejected)}")

        # 5. Graceful drain: SIGTERM with one request in flight.
        inflight = {}

        def slow_fire() -> None:
            cfg = dict(CONFIG, seed=999, window_ns=300_000.0)
            inflight["outcome"] = request(base, "/v1/run", {"config": cfg})

        slow = threading.Thread(target=slow_fire)
        slow.start()
        time.sleep(0.5)  # let it be admitted and dispatched
        server.send_signal(signal.SIGTERM)
        # New work during the drain must be refused with 503 (the
        # listener may already be gone if the drain won the race).
        try:
            status, _, _ = request(base, "/v1/run", {"config": dict(CONFIG, seed=7)},
                                   timeout=5.0)
            check(status == 503, "request during drain refused with 503",
                  f"status={status}")
        except (urllib.error.URLError, ConnectionError, OSError):
            print("[serve-smoke] ok: drain finished before the probe connected")
        slow.join(timeout=120)
        check(not slow.is_alive(), "in-flight request resolved during drain")
        outcome = inflight.get("outcome")
        check(outcome is not None and outcome[0] == 200,
              "in-flight request completed with 200 during drain",
              f"outcome={outcome and outcome[0]}")
        try:
            exit_code = server.wait(timeout=60)
        except subprocess.TimeoutExpired:
            server.kill()
            exit_code = None
        check(exit_code == 0, "server exited 0 after SIGTERM",
              f"exit={exit_code}")
        done_lines = [
            json.loads(line)
            for line in journal.read_text().splitlines()
            if line.strip()
        ]
        check(any(rec["kind"] == "done" for rec in done_lines),
              "journal holds completed work after drain",
              f"{len(done_lines)} records")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
        out, err = server.communicate()
        if FAILURES:
            print("---- server stdout ----\n" + out)
            print("---- server stderr ----\n" + err)

    if FAILURES:
        print(f"[serve-smoke] {len(FAILURES)} check(s) FAILED: {FAILURES}")
        return 1
    print("[serve-smoke] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
