#!/usr/bin/env python3
"""End-to-end chaos smoke for the hardened execution layer.

Exercises the two recovery paths ``docs/resilience.md`` promises,
against the real CLI in real subprocesses (no mocks):

1. **Worker death mid-sweep** — a faulted batch containing a
   ``die=1`` sabotage config (the worker SIGKILLs itself) must still
   complete: every healthy config produces a result, the dead one is
   recorded in the journal as a structured ``crash`` failure, and the
   CLI exits 3.
2. **Sweep death mid-run** — a running sweep is SIGKILLed from the
   outside after checkpointing some results; re-running with
   ``--resume`` must finish the remainder while replaying the
   journaled results instead of re-simulating them.

Used by the CI ``chaos`` job::

    python scripts/chaos_smoke.py           # exit 0 iff both pass
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

WINDOW_NS = 120_000.0
EPOCH_NS = 30_000.0


def base_config(
    seed: int, fault_spec: str = "", window_ns: float = WINDOW_NS
) -> dict:
    """One small, fast experiment config as a batch-spec dict."""
    return {
        "workload": "sp.D",
        "topology": "daisychain",
        "scale": "small",
        "mechanism": "VWL+ROO",
        "policy": "aware",
        "alpha": 0.05,
        "window_ns": window_ns,
        "epoch_ns": EPOCH_NS,
        "seed": seed,
        "fault_spec": fault_spec,
    }


def cli(*args: str) -> list:
    return [sys.executable, "-m", "repro.cli", *args]


def journal_records(path: Path) -> list:
    records = []
    if path.exists():
        for line in path.read_text().splitlines():
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                pass  # torn tail line from the SIGKILL
    return records


def check(cond: bool, what: str) -> None:
    if not cond:
        print(f"FAIL: {what}", file=sys.stderr)
        sys.exit(1)
    print(f"  ok: {what}")


def scenario_worker_death(tmp: Path) -> None:
    """A sweep survives a worker that SIGKILLs itself mid-run."""
    print("[1/2] worker death mid-sweep")
    spec = tmp / "batch_a.json"
    journal = tmp / "a.journal"
    out = tmp / "a.json"
    faulted = "seed=7,crc=0.2,crc_bursts=3,burst_ns=6000,down=1,stall=2"
    spec.write_text(json.dumps([
        base_config(1),
        base_config(2),
        base_config(3, fault_spec=faulted),
        base_config(4, fault_spec="die=1"),
    ]))
    proc = subprocess.run(
        cli("batch", str(spec), "--jobs", "2", "--no-cache",
            "--timeout", "300", "--retries", "1",
            "--journal", str(journal), "--out-json", str(out)),
        capture_output=True, text=True, timeout=600,
    )
    check(proc.returncode == 3,
          f"batch with a dying worker exits 3 (got {proc.returncode})")
    recs = journal_records(journal)
    done = [r for r in recs if r["kind"] == "done"]
    failed = [r for r in recs if r["kind"] == "failed"]
    check(len({r["key"] for r in done}) == 3,
          "journal has the 3 healthy results")
    check(len(failed) >= 1 and failed[-1]["error_type"] == "crash",
          "the SIGKILLed worker is journaled as a crash failure")
    check(failed[-1]["attempts"] >= 2, "the crash was retried before failing")
    saved = json.loads(out.read_text())
    check(len(saved) == 3, "healthy results were saved, the failure withheld")
    check("FAILED" in proc.stderr, "the failure is reported on stderr")


def scenario_sweep_death(tmp: Path) -> None:
    """A SIGKILLed sweep finishes under --resume without re-simulating."""
    print("[2/2] sweep SIGKILL + --resume")
    spec = tmp / "batch_b.json"
    journal = tmp / "b.journal"
    total = 8
    # Longer windows than scenario 1 so the kill lands mid-sweep even
    # on a fast host: ~8x the simulated time per experiment.
    spec.write_text(json.dumps(
        [base_config(10 + i, window_ns=1_000_000.0) for i in range(total)]
    ))
    argv = cli("batch", str(spec), "--jobs", "2", "--no-cache",
               "--journal", str(journal))
    sweep = subprocess.Popen(
        argv, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        if any(r["kind"] == "done" for r in journal_records(journal)):
            break
        if sweep.poll() is not None:
            break
        time.sleep(0.02)
    check(sweep.poll() is None, "sweep still running when the kill lands")
    os.killpg(sweep.pid, signal.SIGKILL)  # takes the worker pool down too
    sweep.wait(timeout=60)
    checkpointed = len(
        {r["key"] for r in journal_records(journal) if r["kind"] == "done"}
    )
    check(0 < checkpointed < total,
          f"sweep died mid-run with {checkpointed}/{total} checkpointed")

    resume = subprocess.run(
        argv + ["--resume"], capture_output=True, text=True, timeout=600,
    )
    check(resume.returncode == 0, "--resume completes the sweep cleanly")
    done = {r["key"] for r in journal_records(journal) if r["kind"] == "done"}
    check(len(done) == total, f"journal holds all {total} results after resume")
    m = re.search(r"# (\d+) simulated", resume.stderr)
    check(m is not None and int(m.group(1)) <= total - checkpointed,
          "resume simulated only the remainder "
          f"({m.group(1) if m else '?'} <= {total - checkpointed})")
    check("journal replays" in resume.stderr,
          "resume reports the journal replays")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        scenario_worker_death(Path(tmp))
        scenario_sweep_death(Path(tmp))
    print("chaos smoke: all scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
