#!/usr/bin/env python3
"""Chaos smoke test of the self-healing serve layer (CI ``serve`` job).

Runs real server subprocesses and proves the resilience contract from
the outside:

1. **Worker chaos**: with a parallel executor, SIGKILL a worker process
   mid-batch.  The pool is rebuilt, the killed config is adjudicated in
   an isolated child, both admitted requests still complete with 200,
   and ``/stats`` records the worker restart.
2. **Queue saturation + analytical degradation**: with ``--degrade
   analytical`` and a full queue, an overflow request is answered 200
   with ``"approximate": true`` and a body that matches the in-process
   closed-form power model byte for byte; ``/healthz`` reports
   ``degraded`` (still ready); a repeat of the same config once the
   queue clears is *simulated* -- degraded answers are never cached.
3. **Circuit breaker**: consecutive timeout failures for one config
   family trip its breaker; the next request for the family is answered
   analytically with ``degraded_reason: breaker_open``, ``/healthz``
   lists the open family, and a different family keeps simulating.

Run from the repository root::

    python scripts/selfheal_smoke.py
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: ~0.2 s of wall clock per simulation -- the "fast" config family.
FAST = {"workload": "mixB", "window_ns": 20_000.0, "epoch_ns": 5_000.0}
#: ~11 s of wall clock -- long enough to SIGKILL a worker mid-run.
SLOW = {"workload": "mixB", "window_ns": 1_000_000.0, "epoch_ns": 250_000.0}

FAILURES = []


def check(ok: bool, label: str, detail: str = "") -> None:
    """Record one assertion; failures are fatal at exit, not mid-run."""
    status = "ok" if ok else "FAIL"
    print(f"[selfheal-smoke] {status}: {label}"
          + (f" ({detail})" if detail else ""), flush=True)
    if not ok:
        FAILURES.append(label)


def request(base: str, path: str, body=None, timeout: float = 180.0):
    """(status, headers, parsed JSON body) for one HTTP round trip."""
    req = urllib.request.Request(
        base + path,
        data=None if body is None else json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def start_server(extra_flags, env):
    """Launch ``repro-mnet serve`` and return (process, base URL)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--no-cache", *extra_flags],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, cwd=REPO,
    )
    line = proc.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"server did not announce its address: {line!r}")
    return proc, f"http://{match.group(1)}:{match.group(2)}"


def stop_server(proc, label: str) -> None:
    """SIGTERM the server and check it drains to exit 0."""
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        code = None
    check(code == 0, f"{label}: server drained and exited 0", f"exit={code}")


def child_pids(pid: int):
    """Direct children of ``pid`` (worker processes), via /proc."""
    children = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            stat = (pathlib.Path("/proc") / entry / "stat").read_text()
        except OSError:
            continue
        # Field 4 of /proc/<pid>/stat is the ppid (after the comm field,
        # which may contain spaces but is parenthesised).
        ppid = int(stat.rsplit(")", 1)[1].split()[1])
        if ppid == pid:
            children.append(int(entry))
    return children


def expected_analytical_result(config: dict) -> dict:
    """The in-process closed-form result the degraded body must match."""
    from repro.analysis.power_model import predict_experiment_result
    from repro.harness.io import config_from_dict, result_to_cache_dict

    expected = result_to_cache_dict(
        predict_experiment_result(config_from_dict(config))
    )
    # Normalize through JSON so the comparison sees exactly what the
    # wire carried (e.g. tuples become lists on both sides).
    return json.loads(json.dumps(expected))


def scenario_worker_chaos(env) -> None:
    """SIGKILL a pool worker mid-batch; both requests must complete."""
    server, base = start_server(
        ["--jobs", "2", "--queue-limit", "2", "--degrade", "analytical",
         "--heartbeat-s", "0.2", "--batch-window-ms", "300",
         "--breaker-threshold", "0"],
        env,
    )
    try:
        # Two distinct slow configs coalesce into one 2-worker batch.
        outcomes = [None, None]

        def fire(i: int) -> None:
            cfg = dict(SLOW, seed=101 + i)
            outcomes[i] = request(base, "/v1/run", {"config": cfg})

        threads = [threading.Thread(target=fire, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        # Wait until both are dispatched, then until workers exist.
        workers = []
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            _, _, stats = request(base, "/stats")
            workers = child_pids(server.pid)
            if stats["in_flight"] >= 2 and workers:
                break
            time.sleep(0.2)
        check(bool(workers), "worker chaos: pool workers spawned",
              f"pids={workers}")
        time.sleep(1.0)  # let the workers get into their simulations
        victims = child_pids(server.pid)
        if victims:
            os.kill(victims[0], signal.SIGKILL)
            print(f"[selfheal-smoke] SIGKILLed worker {victims[0]}",
                  flush=True)

        # Queue is saturated (limit 2, 2 in flight): an overflow request
        # is answered by the analytical model, not 429.
        overflow = dict(FAST, seed=103)
        status, _, body = request(base, "/v1/run", {"config": overflow})
        check(status == 200 and body.get("approximate") is True,
              "saturated queue answers 200 approximate",
              f"status={status}")
        check(body.get("degraded_reason") == "queue_full",
              "degraded reason is queue_full",
              f"reason={body.get('degraded_reason')}")
        check(body.get("result") == expected_analytical_result(overflow),
              "degraded body matches the in-process closed-form model")
        check("tolerance" in body and "relative" in body["tolerance"],
              "degraded body carries a tolerance band")

        status, _, health = request(base, "/healthz")
        check(status == 200 and health["status"] == "degraded",
              "healthz reports degraded (still 200) after incidents",
              f"status={health.get('status')}")
        status, _, ready = request(base, "/healthz/ready")
        check(status == 200 and ready["ready"] is True,
              "degraded service stays ready")

        for t in threads:
            t.join(timeout=180)
        codes = [o and o[0] for o in outcomes]
        check(codes == [200, 200],
              "both admitted requests completed despite the worker kill",
              f"codes={codes}")
        _, _, stats = request(base, "/stats")
        restarts = stats.get("supervisor", {}).get("worker_restarts", 0)
        check(restarts >= 1, "/stats recorded the worker pool rebuild",
              f"worker_restarts={restarts}")
        check(stats["degraded"]["queue_full"] >= 1,
              "/stats recorded the degraded answer",
              f"degraded={stats['degraded']}")
        check(stats["rejected_queue_full"] == 0,
              "no hard 429s were served in analytical mode")

        # The degraded config must not have been cached: now that the
        # queue is clear, the same config is *simulated*.
        status, _, body = request(base, "/v1/run", {"config": overflow})
        check(status == 200 and body.get("tier") == "simulated",
              "degraded answer was never cached (repeat simulates)",
              f"tier={body.get('tier')}")
        status, _, body = request(base, "/v1/run", {"config": overflow})
        check(status == 200 and body.get("tier") == "memory",
              "the simulated repeat is cached normally",
              f"tier={body.get('tier')}")
    finally:
        stop_server(server, "worker chaos")


def scenario_breaker(env) -> None:
    """Timeout failures trip a family's breaker; it degrades, not 500s."""
    server, base = start_server(
        ["--timeout", "2", "--breaker-threshold", "2",
         "--breaker-cooldown", "300", "--degrade", "analytical",
         "--heartbeat-s", "0.2", "--batch-window-ms", "10"],
        env,
    )
    try:
        # Two consecutive timeouts for the (daisychain) family.
        for seed in (201, 202):
            cfg = dict(SLOW, seed=seed)
            status, _, body = request(base, "/v1/run", {"config": cfg})
            check(status == 500
                  and body.get("error", {}).get("kind") == "timeout",
                  f"slow config seed={seed} fails with a structured timeout",
                  f"status={status} body={body.get('error')}")

        # The breaker is open: the family degrades to the analytical
        # model instead of burning another executor slot.
        tripped = dict(SLOW, seed=203)
        status, _, body = request(base, "/v1/run", {"config": tripped})
        check(status == 200 and body.get("approximate") is True,
              "open breaker answers 200 approximate",
              f"status={status}")
        check(body.get("degraded_reason") == "breaker_open",
              "degraded reason is breaker_open",
              f"reason={body.get('degraded_reason')}")
        check(body.get("result") == expected_analytical_result(tripped),
              "breaker-degraded body matches the closed-form model")

        status, _, health = request(base, "/healthz")
        check(health.get("open_breakers"),
              "healthz lists the open breaker family",
              f"open={health.get('open_breakers')}")
        check(health["status"] == "degraded" and status == 200,
              "healthz is degraded while a breaker is open")

        # A different family (same topology family is tripped; the fast
        # *small-window* config shares it, so use another topology).
        other = dict(FAST, seed=204, topology="star")
        status, _, body = request(base, "/v1/run", {"config": other})
        check(status == 200 and body.get("tier") == "simulated",
              "untripped family still simulates normally",
              f"status={status} tier={body.get('tier')}")

        _, _, stats = request(base, "/stats")
        families = stats["breakers"]["families"]
        open_families = [f for f, b in families.items()
                        if b["state"] == "open"]
        check(len(open_families) == 1,
              "exactly one family's breaker is open",
              f"families={ {f: b['state'] for f, b in families.items()} }")
        check(stats["degraded"]["breaker_open"] >= 1,
              "/stats recorded the breaker-degraded answer")
    finally:
        stop_server(server, "breaker")


def main() -> int:
    """Run the chaos sequence; returns a process exit code."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    scenario_worker_chaos(env)
    scenario_breaker(env)
    if FAILURES:
        print(f"[selfheal-smoke] {len(FAILURES)} check(s) FAILED: {FAILURES}")
        return 1
    print("[selfheal-smoke] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
